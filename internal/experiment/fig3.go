package experiment

import (
	"fmt"
	"strings"

	"xbarsec/internal/dataset"
	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/stats"
)

// Fig3Panel is one (sensitivity map, 1-norm map) pair of Figure 3. For
// CIFAR-10 the maps cover only the first color channel, as in the paper.
type Fig3Panel struct {
	Config ModelConfig
	// Sensitivity is the per-pixel mean |∂L/∂u_j| over the test set.
	Sensitivity []float64
	// Norms is the per-pixel power-channel 1-norm signal.
	Norms []float64
	// Width and Height give the map geometry for rendering.
	Width, Height int
	// Corr is the Pearson correlation between the two maps.
	Corr float64
}

// Fig3Result reproduces Figure 3's four panel pairs.
type Fig3Result struct {
	Panels []Fig3Panel
}

// RunFig3 regenerates Figure 3: per configuration, the mean sensitivity
// map next to the power-extracted column-1-norm map.
func RunFig3(opts Options) (*Fig3Result, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed).Split("fig3")
	configs := FourConfigs()
	panels := make([]Fig3Panel, len(configs))
	err := pool.DoErr(opts.Workers, len(configs), func(ci int) error {
		cfg := configs[ci]
		v, err := buildVictim(cfg, opts, root.Split(cfg.Name()))
		if err != nil {
			return err
		}
		sens := v.net.MeanAbsInputGradient(v.test)
		norms := v.signals
		w, h := v.test.Width, v.test.Height
		plane := w * h
		// Paper plots only the first color channel for CIFAR-10.
		sensMap := dataset.FirstChannel(sens, w, h)
		normMap := dataset.FirstChannel(norms, w, h)
		corr, err := stats.Pearson(sensMap[:plane], normMap[:plane])
		if err != nil {
			return fmt.Errorf("experiment: fig3 %s: %w", cfg.Name(), err)
		}
		panels[ci] = Fig3Panel{
			Config: cfg, Sensitivity: sensMap, Norms: normMap,
			Width: w, Height: h, Corr: corr,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Panels: panels}, nil
}

// Render produces side-by-side ASCII heatmaps per panel plus the
// correlation summary table.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	tbl := &report.Table{
		Title:  "Figure 3: mean |sensitivity| vs power-extracted column 1-norms (first channel)",
		Header: []string{"Config", "Pearson r"},
	}
	for _, p := range r.Panels {
		tbl.AddRow(p.Config.Name(), report.F(p.Corr, 3))
	}
	b.WriteString(tbl.String())
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n[%s] mean |dL/du| map:\n%s", p.Config.Name(), report.Heatmap(p.Sensitivity, p.Width, p.Height))
		fmt.Fprintf(&b, "[%s] 1-norm map:\n%s", p.Config.Name(), report.Heatmap(p.Norms, p.Width, p.Height))
	}
	return b.String()
}
