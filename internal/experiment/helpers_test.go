package experiment

import (
	"testing"

	"xbarsec/internal/rng"
)

func testSrc(t *testing.T, seed int64) *rng.Source {
	t.Helper()
	return rng.New(seed)
}
