package experiment

import (
	"fmt"
	"io"
	"math"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/nn"
	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/stats"
	"xbarsec/internal/tensor"
)

// Extension experiments beyond the paper's evaluation, along its stated
// future-work axes: multi-layer networks (A4) and countermeasures (A5).

// DepthAblationRow compares how well first-layer column 1-norms (what the
// power channel reveals for a layer-per-array mapping) track the input
// sensitivity as network depth grows.
type DepthAblationRow struct {
	// Hidden lists hidden-layer widths (empty = the paper's single-layer
	// case).
	Hidden []int `json:"hidden"`
	// TestAccuracy is the trained network's test accuracy.
	TestAccuracy float64 `json:"test_accuracy"`
	// CorrOfMean is the Pearson correlation between mean |∂L/∂u| and the
	// first layer's column 1-norms.
	CorrOfMean float64 `json:"corr_of_mean"`
}

// DepthAblationResult is extension experiment A4.
type DepthAblationResult struct {
	Rows []DepthAblationRow `json:"rows"`
}

// depthEnv is A4's shared environment: the train/test splits all depths
// share read-only.
type depthEnv struct {
	cfg   ModelConfig
	train *dataset.Dataset
	test  *dataset.Dataset
}

// depthHiddens lists the swept architectures (empty = the paper's
// single-layer case).
func depthHiddens() [][]int { return [][]int{{}, {64}, {64, 32}} }

// depthGrid measures the power channel's Case-1 signal on deeper
// networks (paper §V future work) on the grid engine: for multi-layer
// networks the first array's column norms are still observable, but
// hidden layers decouple them from the end-to-end input sensitivity.
var depthGrid = &engine.Grid[depthEnv, []int, DepthAblationRow, *DepthAblationResult]{
	Name:      "ablate-depth",
	Title:     "power-channel signal vs network depth (A4)",
	SeedLabel: "ablation-depth",
	Axes: func(t *engine.T) []engine.Axis {
		ax := engine.Axis{Name: "hidden"}
		for _, h := range depthHiddens() {
			if len(h) == 0 {
				ax.Values = append(ax.Values, "none")
				continue
			}
			ax.Values = append(ax.Values, fmt.Sprintf("%v", h))
		}
		return []engine.Axis{ax}
	},
	Setup: func(t *engine.T) (depthEnv, error) {
		cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy}
		train, test, err := loadData(cfg, t.Opts, t.Root.Split("data"))
		if err != nil {
			return depthEnv{}, err
		}
		return depthEnv{cfg: cfg, train: train, test: test}, nil
	},
	Cells: func(t *engine.T, _ depthEnv) ([][]int, error) {
		return depthHiddens(), nil
	},
	Src: func(t *engine.T, hidden []int, _ int) *rng.Source {
		return t.Root.SplitN("depth", len(hidden))
	},
	Job: func(t *engine.T, env depthEnv, hidden []int, src *rng.Source) (DepthAblationRow, error) {
		var (
			acc      float64
			sens     []float64
			colNorms []float64
		)
		if len(hidden) == 0 {
			net, _, err := nn.TrainNew(env.train, env.cfg.Act, env.cfg.Crit, trainCfgFor(env.cfg), src.Split("train"))
			if err != nil {
				return DepthAblationRow{}, err
			}
			acc = net.Accuracy(env.test)
			sens = net.MeanAbsInputGradient(env.test)
			colNorms = net.W.ColAbsSums()
		} else {
			widths := append([]int{env.train.Dim()}, hidden...)
			widths = append(widths, env.train.NumClasses)
			mlp, err := nn.NewMLP(widths, nn.ActReLU, env.cfg.Act, env.cfg.Crit)
			if err != nil {
				return DepthAblationRow{}, err
			}
			mlp.InitXavier(src.Split("init"))
			if _, err := nn.TrainMLP(mlp, env.train, nn.TrainConfig{
				Epochs: 25, BatchSize: 32, LearningRate: 0.1, Momentum: 0.9,
			}, src.Split("sgd")); err != nil {
				return DepthAblationRow{}, err
			}
			acc = mlp.Accuracy(env.test)
			oh := env.test.OneHot()
			sens = make([]float64, env.train.Dim())
			for i := 0; i < env.test.Len(); i++ {
				g := mlp.InputGradient(env.test.X.Row(i), oh.Row(i))
				for j, v := range g {
					sens[j] += math.Abs(v)
				}
			}
			// Deploy the MLP layer-per-array and extract the first
			// layer's column signals from its power rail, exactly as the
			// attacker would.
			hw, err := crossbar.NewMLPNetwork(mlp, crossbar.DefaultDeviceConfig(), nil)
			if err != nil {
				return DepthAblationRow{}, err
			}
			probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.FirstLayerMeter()), 0, nil)
			if err != nil {
				return DepthAblationRow{}, err
			}
			colNorms, err = probe.ExtractColumnSignals(1)
			if err != nil {
				return DepthAblationRow{}, err
			}
		}
		corr, err := stats.Pearson(sens, colNorms)
		if err != nil {
			return DepthAblationRow{}, fmt.Errorf("experiment: depth ablation %v: %w", hidden, err)
		}
		return DepthAblationRow{Hidden: hidden, TestAccuracy: acc, CorrOfMean: corr}, nil
	},
	Reduce: func(t *engine.T, _ depthEnv, cells [][]int, rows []DepthAblationRow) (*DepthAblationResult, error) {
		return &DepthAblationResult{Rows: rows}, nil
	},
}

// RunDepthAblation measures the power channel's Case-1 signal on deeper
// networks.
func RunDepthAblation(opts Options) (*DepthAblationResult, error) {
	return depthGrid.Run(opts)
}

// Tables formats A4 as a table.
func (r *DepthAblationResult) Tables() []*report.Table {
	t := &report.Table{
		Title:  "Extension A4: power-channel signal vs network depth (MNIST, softmax head)",
		Header: []string{"hidden layers", "test acc", "corr(mean |dL/du|, L1-norms of layer 0)"},
	}
	for _, row := range r.Rows {
		name := "none (paper)"
		if len(row.Hidden) > 0 {
			name = fmt.Sprintf("%v", row.Hidden)
		}
		t.AddRow(name, report.F(row.TestAccuracy, 3), report.F(row.CorrOfMean, 3))
	}
	return []*report.Table{t}
}

// Render formats A4.
func (r *DepthAblationResult) Render() string { return r.Tables()[0].String() }

// WriteJSON serializes the structured result.
func (r *DepthAblationResult) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }

// MaskingAblationResult is extension experiment A5: the dummy-row power
// masking countermeasure.
type MaskingAblationResult struct {
	// RankCorrPlain and RankCorrMasked are the Spearman correlations
	// between extracted signals and true column 1-norms.
	RankCorrPlain  float64 `json:"rank_corr_plain"`
	RankCorrMasked float64 `json:"rank_corr_masked"`
	// AttackAccPlain and AttackAccMasked are oracle accuracies under the
	// power-guided "+" single-pixel attack at the given strength.
	AttackAccPlain  float64 `json:"attack_acc_plain"`
	AttackAccMasked float64 `json:"attack_acc_masked"`
	// CleanAcc is the unattacked accuracy (identical for both arrays).
	CleanAcc float64 `json:"clean_acc"`
	// Eps is the attack strength used.
	Eps float64 `json:"eps"`
	// Overhead is the masking power overhead fraction.
	Overhead float64 `json:"overhead"`
}

// maskingEps is the A5 attack strength.
const maskingEps = 6.0

// maskingEnv is A5's shared environment: the victim, the masked
// deployment of the same network, and both arrays' extracted signals.
type maskingEnv struct {
	v             *victim
	maskedHW      *crossbar.Network
	plainSignals  []float64
	maskedSignals []float64
	rhoPlain      float64
	rhoMasked     float64
}

// maskingCell names one attacked array of A5.
type maskingCell struct {
	label  string // also the historical rng split label
	masked bool
}

// maskingGrid evaluates the power-masking defense end to end on the
// grid engine: Setup builds the plain and masked deployments and
// extracts both arrays' signals; the two cells measure the power-guided
// attack against each array.
var maskingGrid = &engine.Grid[*maskingEnv, maskingCell, float64, *MaskingAblationResult]{
	Name:      "ablate-masking",
	Title:     "dummy-row power masking defense (A5)",
	SeedLabel: "ablation-masking",
	Axes: func(t *engine.T) []engine.Axis {
		return []engine.Axis{{Name: "array", Values: []string{"plain", "masked"}}}
	},
	Setup: func(t *engine.T) (*maskingEnv, error) {
		cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
		v, err := victimFor(t, cfg)
		if err != nil {
			return nil, err
		}
		trueNorms := v.net.W.ColAbsSums()
		dcfg := crossbar.DefaultDeviceConfig()
		dcfg.PowerMasking = true
		maskedHW, err := crossbar.NewNetwork(v.net, dcfg, nil)
		if err != nil {
			return nil, err
		}
		extract := func(hw *crossbar.Network) ([]float64, float64, error) {
			probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.Crossbar()), 0, nil)
			if err != nil {
				return nil, 0, err
			}
			signals, err := probe.ExtractColumnSignals(1)
			if err != nil {
				return nil, 0, err
			}
			rho, err := stats.Spearman(signals, trueNorms)
			if err != nil {
				// A fully-masked array yields constant signals; the rank
				// correlation is undefined, which for the attacker means no
				// information: report 0.
				return signals, 0, nil
			}
			return signals, rho, nil
		}
		env := &maskingEnv{v: v, maskedHW: maskedHW}
		if env.plainSignals, env.rhoPlain, err = extract(v.hw); err != nil {
			return nil, err
		}
		if env.maskedSignals, env.rhoMasked, err = extract(maskedHW); err != nil {
			return nil, err
		}
		return env, nil
	},
	Cells: func(t *engine.T, _ *maskingEnv) ([]maskingCell, error) {
		return []maskingCell{{label: "plain"}, {label: "masked", masked: true}}, nil
	},
	Src: func(t *engine.T, c maskingCell, _ int) *rng.Source {
		return t.Root.Split(c.label)
	},
	Job: func(t *engine.T, env *maskingEnv, c maskingCell, src *rng.Source) (float64, error) {
		hw, signals := env.v.hw, env.plainSignals
		if c.masked {
			hw, signals = env.maskedHW, env.maskedSignals
		}
		v := env.v
		oh := v.test.OneHot()
		n := v.test.Len()
		advs := make([][]float64, n)
		err := pool.DoErr(t.Opts.Workers, n, func(i int) error {
			adv, err := attack.SinglePixel(attack.PixelNormPlus, tensor.CloneVec(v.test.X.Row(i)), oh.Row(i), maskingEps, signals, nil, src.SplitN("sample", i))
			if err != nil {
				return err
			}
			advs[i] = adv
			return nil
		})
		if err != nil {
			return 0, err
		}
		labels, err := hw.PredictBatch(advs)
		if err != nil {
			return 0, err
		}
		correct := 0
		for i, l := range labels {
			if l == v.test.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(n), nil
	},
	Reduce: func(t *engine.T, env *maskingEnv, cells []maskingCell, accs []float64) (*MaskingAblationResult, error) {
		return &MaskingAblationResult{
			RankCorrPlain:   env.rhoPlain,
			RankCorrMasked:  env.rhoMasked,
			AttackAccPlain:  accs[0],
			AttackAccMasked: accs[1],
			CleanAcc:        env.v.net.Accuracy(env.v.test),
			Eps:             maskingEps,
			Overhead:        env.maskedHW.Crossbar().MaskOverheadFraction(),
		}, nil
	},
}

// RunMaskingAblation evaluates the power-masking defense end to end.
func RunMaskingAblation(opts Options) (*MaskingAblationResult, error) {
	return maskingGrid.Run(opts)
}

// Tables formats A5 as a table.
func (r *MaskingAblationResult) Tables() []*report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Extension A5: dummy-row power masking defense (clean acc %.3f, attack eps %.1f)", r.CleanAcc, r.Eps),
		Header: []string{"array", "side-channel rank corr", "acc under power-guided attack", "power overhead"},
	}
	t.AddRow("plain", report.F(r.RankCorrPlain, 3), report.F(r.AttackAccPlain, 3), "0%")
	t.AddRow("masked", report.F(r.RankCorrMasked, 3), report.F(r.AttackAccMasked, 3),
		fmt.Sprintf("%.0f%%", 100*r.Overhead))
	return []*report.Table{t}
}

// Render formats A5.
func (r *MaskingAblationResult) Render() string { return r.Tables()[0].String() }

// WriteJSON serializes the structured result.
func (r *MaskingAblationResult) WriteJSON(w io.Writer) error { return engine.WriteJSON(w, r) }
