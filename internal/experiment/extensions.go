package experiment

import (
	"fmt"
	"math"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/pool"
	"xbarsec/internal/report"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/stats"
	"xbarsec/internal/tensor"
)

// Extension experiments beyond the paper's evaluation, along its stated
// future-work axes: multi-layer networks (A4) and countermeasures (A5).

// DepthAblationRow compares how well first-layer column 1-norms (what the
// power channel reveals for a layer-per-array mapping) track the input
// sensitivity as network depth grows.
type DepthAblationRow struct {
	// Hidden lists hidden-layer widths (empty = the paper's single-layer
	// case).
	Hidden []int
	// TestAccuracy is the trained network's test accuracy.
	TestAccuracy float64
	// CorrOfMean is the Pearson correlation between mean |∂L/∂u| and the
	// first layer's column 1-norms.
	CorrOfMean float64
}

// DepthAblationResult is extension experiment A4.
type DepthAblationResult struct {
	Rows []DepthAblationRow
}

// RunDepthAblation measures the power channel's Case-1 signal on deeper
// networks (paper §V future work): for multi-layer networks the first
// array's column norms are still observable, but hidden layers decouple
// them from the end-to-end input sensitivity.
func RunDepthAblation(opts Options) (*DepthAblationResult, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed).Split("ablation-depth")
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActSoftmax, Crit: nn.LossCrossEntropy}
	train, test, err := loadData(cfg, opts, root.Split("data"))
	if err != nil {
		return nil, err
	}
	depths := [][]int{{}, {64}, {64, 32}}
	rows := make([]DepthAblationRow, len(depths))
	// The train/test datasets are shared read-only; each depth trains its
	// own model from its own seed split, so the sweep fans out.
	poolErr := pool.DoErr(opts.Workers, len(depths), func(di int) error {
		hidden := depths[di]
		src := root.SplitN("depth", len(hidden))
		var (
			acc      float64
			sens     []float64
			colNorms []float64
		)
		if len(hidden) == 0 {
			net, _, err := nn.TrainNew(train, cfg.Act, cfg.Crit, trainCfgFor(cfg), src.Split("train"))
			if err != nil {
				return err
			}
			acc = net.Accuracy(test)
			sens = net.MeanAbsInputGradient(test)
			colNorms = net.W.ColAbsSums()
		} else {
			widths := append([]int{train.Dim()}, hidden...)
			widths = append(widths, train.NumClasses)
			mlp, err := nn.NewMLP(widths, nn.ActReLU, cfg.Act, cfg.Crit)
			if err != nil {
				return err
			}
			mlp.InitXavier(src.Split("init"))
			if _, err := nn.TrainMLP(mlp, train, nn.TrainConfig{
				Epochs: 25, BatchSize: 32, LearningRate: 0.1, Momentum: 0.9,
			}, src.Split("sgd")); err != nil {
				return err
			}
			acc = mlp.Accuracy(test)
			oh := test.OneHot()
			sens = make([]float64, train.Dim())
			for i := 0; i < test.Len(); i++ {
				g := mlp.InputGradient(test.X.Row(i), oh.Row(i))
				for j, v := range g {
					sens[j] += math.Abs(v)
				}
			}
			// Deploy the MLP layer-per-array and extract the first
			// layer's column signals from its power rail, exactly as the
			// attacker would.
			hw, err := crossbar.NewMLPNetwork(mlp, crossbar.DefaultDeviceConfig(), nil)
			if err != nil {
				return err
			}
			probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.FirstLayerMeter()), 0, nil)
			if err != nil {
				return err
			}
			colNorms, err = probe.ExtractColumnSignals(1)
			if err != nil {
				return err
			}
		}
		corr, err := stats.Pearson(sens, colNorms)
		if err != nil {
			return fmt.Errorf("experiment: depth ablation %v: %w", hidden, err)
		}
		rows[di] = DepthAblationRow{Hidden: hidden, TestAccuracy: acc, CorrOfMean: corr}
		return nil
	})
	if poolErr != nil {
		return nil, poolErr
	}
	return &DepthAblationResult{Rows: rows}, nil
}

// Render formats A4 as a table.
func (r *DepthAblationResult) Render() *report.Table {
	t := &report.Table{
		Title:  "Extension A4: power-channel signal vs network depth (MNIST, softmax head)",
		Header: []string{"hidden layers", "test acc", "corr(mean |dL/du|, L1-norms of layer 0)"},
	}
	for _, row := range r.Rows {
		name := "none (paper)"
		if len(row.Hidden) > 0 {
			name = fmt.Sprintf("%v", row.Hidden)
		}
		t.AddRow(name, report.F(row.TestAccuracy, 3), report.F(row.CorrOfMean, 3))
	}
	return t
}

// MaskingAblationResult is extension experiment A5: the dummy-row power
// masking countermeasure.
type MaskingAblationResult struct {
	// RankCorrPlain and RankCorrMasked are the Spearman correlations
	// between extracted signals and true column 1-norms.
	RankCorrPlain, RankCorrMasked float64
	// AttackAccPlain and AttackAccMasked are oracle accuracies under the
	// power-guided "+" single-pixel attack at the given strength.
	AttackAccPlain, AttackAccMasked float64
	// CleanAcc is the unattacked accuracy (identical for both arrays).
	CleanAcc float64
	// Eps is the attack strength used.
	Eps float64
	// Overhead is the masking power overhead fraction.
	Overhead float64
}

// RunMaskingAblation evaluates the power-masking defense end to end.
func RunMaskingAblation(opts Options) (*MaskingAblationResult, error) {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed).Split("ablation-masking")
	cfg := ModelConfig{Kind: dataset.MNIST, Act: nn.ActLinear, Crit: nn.LossMSE}
	v, err := buildVictim(cfg, opts, root.Split("victim"))
	if err != nil {
		return nil, err
	}
	trueNorms := v.net.W.ColAbsSums()

	dcfg := crossbar.DefaultDeviceConfig()
	dcfg.PowerMasking = true
	maskedHW, err := crossbar.NewNetwork(v.net, dcfg, nil)
	if err != nil {
		return nil, err
	}

	extract := func(hw *crossbar.Network) ([]float64, float64, error) {
		probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.Crossbar()), 0, nil)
		if err != nil {
			return nil, 0, err
		}
		signals, err := probe.ExtractColumnSignals(1)
		if err != nil {
			return nil, 0, err
		}
		rho, err := stats.Spearman(signals, trueNorms)
		if err != nil {
			// A fully-masked array yields constant signals; the rank
			// correlation is undefined, which for the attacker means no
			// information: report 0.
			return signals, 0, nil
		}
		return signals, rho, nil
	}
	plainSignals, rhoPlain, err := extract(v.hw)
	if err != nil {
		return nil, err
	}
	maskedSignals, rhoMasked, err := extract(maskedHW)
	if err != nil {
		return nil, err
	}

	const eps = 6.0
	attackAcc := func(hw *crossbar.Network, signals []float64, label string) (float64, error) {
		src := root.Split(label)
		oh := v.test.OneHot()
		n := v.test.Len()
		advs := make([][]float64, n)
		err := pool.DoErr(opts.Workers, n, func(i int) error {
			adv, err := attack.SinglePixel(attack.PixelNormPlus, tensor.CloneVec(v.test.X.Row(i)), oh.Row(i), eps, signals, nil, src.SplitN("sample", i))
			if err != nil {
				return err
			}
			advs[i] = adv
			return nil
		})
		if err != nil {
			return 0, err
		}
		labels, err := hw.PredictBatch(advs)
		if err != nil {
			return 0, err
		}
		correct := 0
		for i, l := range labels {
			if l == v.test.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(n), nil
	}
	accPlain, err := attackAcc(v.hw, plainSignals, "plain")
	if err != nil {
		return nil, err
	}
	accMasked, err := attackAcc(maskedHW, maskedSignals, "masked")
	if err != nil {
		return nil, err
	}
	cleanAcc := v.net.Accuracy(v.test)
	return &MaskingAblationResult{
		RankCorrPlain:   rhoPlain,
		RankCorrMasked:  rhoMasked,
		AttackAccPlain:  accPlain,
		AttackAccMasked: accMasked,
		CleanAcc:        cleanAcc,
		Eps:             eps,
		Overhead:        maskedHW.Crossbar().MaskOverheadFraction(),
	}, nil
}

// Render formats A5 as a table.
func (r *MaskingAblationResult) Render() *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("Extension A5: dummy-row power masking defense (clean acc %.3f, attack eps %.1f)", r.CleanAcc, r.Eps),
		Header: []string{"array", "side-channel rank corr", "acc under power-guided attack", "power overhead"},
	}
	t.AddRow("plain", report.F(r.RankCorrPlain, 3), report.F(r.AttackAccPlain, 3), "0%")
	t.AddRow("masked", report.F(r.RankCorrMasked, 3), report.F(r.AttackAccMasked, 3),
		fmt.Sprintf("%.0f%%", 100*r.Overhead))
	return t
}
