// Package cluster implements the deterministic consistent-hash ring
// that assigns victims and experiment specs to xbarserve nodes.
//
// Membership is static and explicit: every node is started with the
// same `-peers id=url,...` list (no gossip, no discovery), and the
// ring is a pure function of (members, vnodes, seed). Two nodes built
// from the same inputs agree on the owner of every key without
// talking to each other; Ring.Hash digests the inputs so nodes and
// clients can detect a membership mismatch. Placement uses sha256 —
// no ambient randomness — so ownership is reproducible across
// processes, platforms and restarts.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// DefaultVNodes is the virtual-node count per member used when a Ring
// is built with vnodes <= 0. 64 points per member keeps the ownership
// split within a few percent of even for small static clusters while
// the point table stays tiny.
const DefaultVNodes = 64

// Member is one node of a static cluster: a stable identifier (the
// `-node-id` flag) and the base URL peers and redirected clients reach
// it at.
type Member struct {
	ID  string
	URL string
}

// Ring is an immutable consistent-hash ring over a static member set.
// All methods are safe for concurrent use.
type Ring struct {
	members []Member // sorted by ID
	vnodes  int
	seed    int64
	points  []point // sorted by hash
	hash    string
}

// point is one virtual node: a placement hash owned by members[member].
type point struct {
	h      uint64
	member int
}

// New builds the ring. Members must be non-empty with unique,
// non-empty IDs and URLs; vnodes <= 0 selects DefaultVNodes. The seed
// participates in every placement hash, so clusters with different
// seeds place keys independently — nodes of one cluster must share it
// (xbarserve reuses the service seed, which peers must already share
// for bit-identical victims).
func New(members []Member, vnodes int, seed int64) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if m.ID == "" || m.URL == "" {
			return nil, fmt.Errorf("cluster: member %+v needs both id and url", m)
		}
		if strings.ContainsAny(m.ID, "=,|\n") {
			return nil, fmt.Errorf("cluster: member id %q contains a reserved character", m.ID)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
		seen[m.ID] = true
		u, err := url.Parse(m.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: member %q url %q is not an http(s) base URL", m.ID, m.URL)
		}
	}
	r := &Ring{members: ms, vnodes: vnodes, seed: seed}
	r.points = make([]point, 0, len(ms)*vnodes)
	for i, m := range ms {
		for rep := 0; rep < vnodes; rep++ {
			h := hash64(fmt.Sprintf("vnode|%d|%s|%d", seed, m.ID, rep))
			r.points = append(r.points, point{h: h, member: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.h != b.h {
			return a.h < b.h
		}
		// A 64-bit collision between two members' vnodes is astronomically
		// unlikely, but ownership must not depend on sort stability.
		return ms[a.member].ID < ms[b.member].ID
	})
	sum := sha256.New()
	fmt.Fprintf(sum, "ring|%d|%d\n", seed, vnodes)
	for _, m := range ms {
		fmt.Fprintf(sum, "%s=%s\n", m.ID, m.URL)
	}
	r.hash = fmt.Sprintf("%x", sum.Sum(nil))
	return r, nil
}

// Owner returns the member that owns key: the first vnode point at or
// clockwise after the key's placement hash.
func (r *Ring) Owner(key string) Member {
	h := hash64(fmt.Sprintf("key|%d|%s", r.seed, key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Lookup returns the member with the given id.
func (r *Ring) Lookup(id string) (Member, bool) {
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i].ID >= id })
	if i < len(r.members) && r.members[i].ID == id {
		return r.members[i], true
	}
	return Member{}, false
}

// Members returns the membership sorted by ID (a copy).
func (r *Ring) Members() []Member {
	ms := make([]Member, len(r.members))
	copy(ms, r.members)
	return ms
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Seed returns the placement seed.
func (r *Ring) Seed() int64 { return r.seed }

// Hash is the membership version: a sha256 digest of (seed, vnodes,
// sorted id=url list). Two rings agree on every key's owner iff their
// hashes are equal; nodes expose it in /v2/stats and /v2/cluster so a
// misconfigured peer list is visible instead of silently splitting
// ownership.
func (r *Ring) Hash() string { return r.hash }

// ParseMembers parses the `-peers` flag format: a comma-separated
// id=url list, e.g. "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080".
func ParseMembers(s string) ([]Member, error) {
	var ms []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("cluster: peer %q is not id=url", part)
		}
		ms = append(ms, Member{ID: id, URL: strings.TrimRight(u, "/")})
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return ms, nil
}

// hash64 derives a placement hash from the first 8 bytes of sha256.
// sha256 rather than a faster non-cryptographic hash keeps placement
// identical on every platform and trivially collision-free in
// practice; ring construction is startup-only and lookups hash one
// short key.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
