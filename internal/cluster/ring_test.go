package cluster

import (
	"fmt"
	"strings"
	"testing"
)

func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{ID: fmt.Sprintf("n%d", i), URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return ms
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("experiment|fig%d|%d|0.01|1", i%7, i)
	}
	return keys
}

// Same seed + members => same placement, regardless of the order the
// member list was written in. This is the clustering contract: nodes
// never exchange placement state, they each derive it.
func TestRingDeterministic(t *testing.T) {
	ms := testMembers(5)
	r1, err := New(ms, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed member order, fresh construction.
	rev := make([]Member, len(ms))
	for i, m := range ms {
		rev[len(ms)-1-i] = m
	}
	r2, err := New(rev, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hash() != r2.Hash() {
		t.Fatalf("membership hash differs across construction order: %s vs %s", r1.Hash(), r2.Hash())
	}
	for _, key := range testKeys(500) {
		if a, b := r1.Owner(key), r2.Owner(key); a != b {
			t.Fatalf("owner(%q) = %v vs %v across construction order", key, a, b)
		}
	}
}

// Different seeds and different membership produce different ring
// hashes — the version nodes compare to catch misconfiguration.
func TestRingHashSensitivity(t *testing.T) {
	base, _ := New(testMembers(3), 64, 11)
	otherSeed, _ := New(testMembers(3), 64, 12)
	otherVN, _ := New(testMembers(3), 32, 11)
	otherMembers, _ := New(testMembers(4), 64, 11)
	for name, r := range map[string]*Ring{
		"seed": otherSeed, "vnodes": otherVN, "members": otherMembers,
	} {
		if r.Hash() == base.Hash() {
			t.Errorf("ring hash insensitive to %s change", name)
		}
	}
	if len(base.Hash()) != 64 {
		t.Fatalf("hash = %q, want 64 hex chars", base.Hash())
	}
}

// Placement must be usefully balanced: with 64 vnodes per member no
// node should own a wildly disproportionate share of keys.
func TestRingDistribution(t *testing.T) {
	r, err := New(testMembers(4), 0, 7) // 0 => DefaultVNodes
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(4000)
	for _, key := range keys {
		counts[r.Owner(key).ID]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 members own keys: %v", len(counts), counts)
	}
	want := len(keys) / 4
	for id, n := range counts {
		if n < want/3 || n > want*3 {
			t.Errorf("member %s owns %d of %d keys (ideal %d): placement badly skewed", id, n, len(keys), want)
		}
	}
}

// Adding a member moves only keys that land on the new member;
// removing one moves only the keys it owned. Everything else stays
// put — the property that makes peer artifact caches survive
// membership changes.
func TestRingMinimalMovement(t *testing.T) {
	ms := testMembers(5)
	full, err := New(ms, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := New(ms[:4], 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(3000)
	moved := 0
	for _, key := range keys {
		before, after := smaller.Owner(key), full.Owner(key)
		if before == after {
			continue
		}
		moved++
		// Growth: a key may only move TO the added member.
		if after.ID != "n4" {
			t.Fatalf("adding n4 moved %q from %s to %s", key, before.ID, after.ID)
		}
	}
	// And shrink is the mirror image: keys owned by n4 fall back, all
	// others keep their owner.
	for _, key := range keys {
		if full.Owner(key).ID != "n4" && smaller.Owner(key) != full.Owner(key) {
			t.Fatalf("removing n4 moved %q, which n4 never owned", key)
		}
	}
	// ~1/5 of keys should move; far more means placement isn't
	// consistent hashing, zero means the new member owns nothing.
	if moved == 0 || moved > len(keys)/2 {
		t.Fatalf("%d of %d keys moved on member add, want roughly %d", moved, len(keys), len(keys)/5)
	}
}

func TestRingLookup(t *testing.T) {
	r, err := New(testMembers(3), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Lookup("n1")
	if !ok || m.URL != "http://10.0.0.2:8080" {
		t.Fatalf("Lookup(n1) = %v, %v", m, ok)
	}
	if _, ok := r.Lookup("ghost"); ok {
		t.Fatal("Lookup(ghost) succeeded")
	}
	if r.Len() != 3 || r.VNodes() != 8 || r.Seed() != 1 {
		t.Fatalf("ring shape = %d/%d/%d", r.Len(), r.VNodes(), r.Seed())
	}
}

func TestRingValidation(t *testing.T) {
	cases := []struct {
		name    string
		members []Member
	}{
		{"empty", nil},
		{"dup id", []Member{{ID: "a", URL: "http://x"}, {ID: "a", URL: "http://y"}}},
		{"no id", []Member{{URL: "http://x"}}},
		{"no url", []Member{{ID: "a"}}},
		{"bad scheme", []Member{{ID: "a", URL: "ftp://x"}}},
		{"reserved char", []Member{{ID: "a=b", URL: "http://x"}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.members, 4, 0); err == nil {
			t.Errorf("%s: New accepted invalid members %+v", tc.name, tc.members)
		}
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("a=http://h1:1, b=http://h2:2/,")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != (Member{ID: "a", URL: "http://h1:1"}) || ms[1] != (Member{ID: "b", URL: "http://h2:2"}) {
		t.Fatalf("parsed = %+v", ms)
	}
	for _, bad := range []string{"", "a", "=http://x", "a=", ","} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) succeeded", bad)
		}
	}
	if _, err := ParseMembers(strings.Repeat(",", 3)); err == nil {
		t.Error("ParseMembers of only separators succeeded")
	}
}
