// Package analyzertest is a self-contained stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads GOPATH-style
// fixture packages from a testdata/src tree, typechecks them (resolving
// fixture-local imports from the tree and everything else from source via
// go/importer), runs an analyzer together with its Requires closure, and
// compares the diagnostics against `// want "regexp"` comments.
//
// The real analysistest depends on go/packages, which the Go toolchain
// does not vendor; this subset covers what the xbarvet analyzer tests
// need — positional want-comments plus a programmatic Diagnostics entry
// point for package-level analyzers like apisurface.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Loader loads and typechecks fixture packages from root (a directory
// laid out GOPATH-style: root/src/<import path>/*.go). A Loader caches
// packages, so fixtures may import each other.
type Loader struct {
	Fset     *token.FileSet
	root     string
	pkgs     map[string]*Package
	fallback types.Importer
}

// Package is one loaded fixture package with everything an analysis.Pass
// needs.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewLoader returns a loader rooted at dir (the directory holding "src").
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		root:     filepath.Join(dir, "src"),
		pkgs:     make(map[string]*Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer: fixture paths resolve from the
// testdata tree, everything else (the stdlib) from Go source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.fallback.Import(path)
}

// Load parses and typechecks the fixture package at the import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analyzertest: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyzertest: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzertest: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Diagnostics loads the fixture package and runs the analyzer (plus its
// Requires closure), returning the analyzer's diagnostics and Run error.
func (l *Loader) Diagnostics(a *analysis.Analyzer, path string) ([]analysis.Diagnostic, error) {
	pkg, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var runOne func(a *analysis.Analyzer, collect bool) error
	runOne = func(a *analysis.Analyzer, collect bool) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, dep := range a.Requires {
			if err := runOne(dep, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
			ReadFile: os.ReadFile,
		}
		res, err := a.Run(pass)
		if err != nil {
			return err
		}
		results[a] = res
		return nil
	}
	err = runOne(a, true)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, err
}

// Run loads each fixture package, runs the analyzer, and asserts that
// diagnostics exactly match the `// want "regexp"` comments: every
// diagnostic must land on a line carrying a matching expectation, and
// every expectation must be matched by exactly one diagnostic.
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := NewLoader(dir)
	for _, path := range paths {
		diags, err := l.Diagnostics(a, path)
		if err != nil {
			t.Errorf("%s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, l, path, diags)
	}
}

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkWants(t *testing.T, l *Loader, path string, diags []analysis.Diagnostic) {
	t.Helper()
	pkg := l.pkgs[path]
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := l.Fset.Position(c.Pos())
				for _, re := range parseWant(t, pos, c.Text) {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// wantRe matches the Go string literals after a `// want` marker.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWant extracts the expectation regexps from a comment, or nil when
// the comment carries no want marker.
func parseWant(t *testing.T, pos token.Position, text string) []*regexp.Regexp {
	t.Helper()
	i := strings.Index(text, "// want ")
	if i < 0 {
		return nil
	}
	var out []*regexp.Regexp
	for _, lit := range wantRe.FindAllString(text[i+len("// want "):], -1) {
		s, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
		}
		out = append(out, re)
	}
	if len(out) == 0 {
		t.Fatalf("%s: `// want` with no pattern", pos)
	}
	return out
}
