package analyze_test

import (
	"testing"

	"xbarsec/internal/analyze"
	"xbarsec/internal/analyze/analyzertest"
)

func TestRngSplit(t *testing.T) {
	analyzertest.Run(t, "testdata", analyze.RngSplit,
		"xbarsec/internal/experiment/rsfix")
}
