// Package analyze implements xbarvet, the project's static analyzers.
// They machine-check the contracts every result in this module leans on,
// so refactors cannot silently erode them:
//
//   - detrand: experiment code must be a pure function of its spec. Inside
//     the deterministic packages (internal/experiment..., internal/crossbar,
//     internal/nn, internal/surrogate, internal/tensor, internal/oracle,
//     internal/rng, internal/service) it forbids ambient randomness
//     (math/rand top-level draws from the process-global source), wall
//     clocks (time.Now), environment reads (os.Getenv/LookupEnv), and map
//     iteration feeding an ordered accumulator.
//
//   - rngsplit: the worker-invariance contract of internal/pool. A
//     *rng.Source captured by a closure passed to pool.Do/pool.DoErr may
//     only be used as the receiver of Split/SplitN — drawing from a shared
//     stream across work items would make results depend on goroutine
//     scheduling. Indexing a captured pre-split []*rng.Source is the other
//     sanctioned pattern and is not flagged.
//
//   - hotalloc: functions annotated //xbar:hotpath must not allocate on
//     their hot path. Flags append (except the x[:0] reuse idiom),
//     fmt.Sprint*/Errorf, slice/map composite literals, and interface
//     boxing at call sites. Arguments of panic statements are exempt —
//     a panicking shape check is by definition not the hot path.
//
//   - apisurface: the api/doc.go additive-only policy. The exported
//     surface of package api (struct fields with JSON tags, ErrorCode
//     values, the code→HTTP-status map, every exported declaration) is
//     recorded in api/testdata/surface.json; any removal or change that
//     is not accompanied by an api.Major bump fails the build. Additions
//     are allowed within a major version. Regenerate the baseline with
//     `make api-baseline`, which refuses to run unless Major or Minor
//     changed.
//
// # Annotation grammar
//
//	//xbar:hotpath [reason]
//	    On a function's doc comment: hotalloc checks the body.
//
//	//xbar:allow <reason>
//	    On the flagged line, or alone on the line above it: suppresses
//	    any xbarvet diagnostic for that line. The reason is mandatory;
//	    a bare //xbar:allow is itself reported.
//
// Run the suite with `make lint`, which builds cmd/xbarvet and drives it
// through `go vet -vettool`. Test files are not checked: the contracts
// govern production code, and tests legitimately use clocks and maps.
package analyze
