package analyze

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// The in-source annotation directives. Both follow the standard Go
// directive shape (no space after //), which gofmt preserves verbatim.
const (
	allowDirective   = "//xbar:allow"
	hotpathDirective = "//xbar:hotpath"
)

// newAllowSet scans every comment in the pass's files and records, per
// file, which lines carry (or sit directly below) an //xbar:allow
// directive, so analyzers can suppress diagnostics the code has
// explicitly taken responsibility for. A bare //xbar:allow (no reason)
// is a finding in its own right — a suppression nobody can audit — and
// is reported immediately.
func newAllowSet(pass *analysis.Pass) *allowed {
	a := &allowed{fset: pass.Fset, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				if strings.TrimSpace(rest) == "" {
					pass.Reportf(c.Pos(), "bare %s: a suppression must carry a reason", allowDirective)
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				m := a.lines[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					a.lines[pos.Filename] = m
				}
				// The directive covers its own line (trailing comment) and
				// the line below (comment-above form).
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return a
}

// allowed is the per-pass suppression index; see newAllowSet.
type allowed struct {
	fset  *token.FileSet
	lines map[string]map[int]bool
}

// ok reports whether the line holding pos is covered by an //xbar:allow.
func (a *allowed) ok(pos token.Pos) bool {
	p := a.fset.Position(pos)
	return a.lines[p.Filename][p.Line]
}

// reportf emits a diagnostic unless the position's line is suppressed.
func (a *allowed) reportf(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if a.ok(pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// inTestFile reports whether pos sits in a _test.go file. The xbarvet
// contracts govern production code; tests legitimately use clocks, maps
// and ambient helpers.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// hasDirective reports whether the function's doc comment carries the
// given directive, returning the rest of that line (the reason).
func hasDirective(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, directive)), true
		}
	}
	return "", false
}
