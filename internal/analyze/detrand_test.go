package analyze_test

import (
	"strings"
	"testing"

	"xbarsec/internal/analyze"
	"xbarsec/internal/analyze/analyzertest"
)

func TestDetRand(t *testing.T) {
	analyzertest.Run(t, "testdata", analyze.DetRand,
		"xbarsec/internal/experiment/detfix")
}

// TestDetRandBareAllow: a reason-less //xbar:allow is itself reported and
// does not suppress the finding beneath it. (Checked programmatically: a
// want comment cannot share the directive's line without becoming its
// reason.)
func TestDetRandBareAllow(t *testing.T) {
	l := analyzertest.NewLoader("testdata")
	diags, err := l.Diagnostics(analyze.DetRand, "xbarsec/internal/experiment/barefix")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bare directive + unsuppressed time.Now): %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "bare //xbar:allow") {
		t.Errorf("first diagnostic = %q, want bare-directive report", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "time.Now") {
		t.Errorf("second diagnostic = %q, want unsuppressed time.Now report", diags[1].Message)
	}
}

// TestDetRandScope: packages outside the deterministic prefixes are not
// checked.
func TestDetRandScope(t *testing.T) {
	l := analyzertest.NewLoader("testdata")
	diags, err := l.Diagnostics(analyze.DetRand, "xbarsec/internal/report/repfix")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("unlisted package got %d diagnostics, want 0: %v", len(diags), diags)
	}
}
