// Package api is the fixture twin of the real protocol package: enough
// surface for apisurface to snapshot — version consts, a tagged struct,
// error codes, and the code→HTTP-status switch.
package api

const (
	Major = 1
	Minor = 0
)

type ErrorCode string

const (
	CodeBadRequest ErrorCode = "bad_request"
	CodeInternal   ErrorCode = "internal"
)

func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeBadRequest:
		return 400
	default:
		return 500
	}
}

type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	Detail  string    `json:"detail,omitempty"`
}

type Health struct {
	Status string `json:"status"`
}

func Version() string { return "v1.0" }
