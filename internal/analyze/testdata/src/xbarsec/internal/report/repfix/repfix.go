// Package repfix sits outside the deterministic prefixes: detrand must
// leave its ambient-state reads alone.
package repfix

import "time"

func stamp() int64 { return time.Now().UnixNano() }
