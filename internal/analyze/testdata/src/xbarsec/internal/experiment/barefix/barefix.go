// Package barefix holds a bare //xbar:allow — a suppression with no
// reason — which detrand must report and must NOT honor (the time.Now
// beneath it is still flagged). Checked programmatically: a want comment
// cannot share the directive's line without becoming its reason text.
package barefix

import "time"

func bareAllow() time.Time {
	//xbar:allow
	return time.Now()
}
