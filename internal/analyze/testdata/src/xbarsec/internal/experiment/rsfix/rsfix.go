// Package rsfix exercises the rngsplit analyzer: every way a
// *rng.Source can leak across pool work items, next to every sanctioned
// derivation pattern.
package rsfix

import (
	"xbarsec/internal/pool"
	"xbarsec/internal/rng"
)

// sharedDraw is the core violation: one stream drawn from by all items.
func sharedDraw(src *rng.Source, out []float64) {
	pool.Do(0, len(out), func(i int) {
		out[i] = src.Float64() // want `\*rng\.Source "src" is shared across pool work items`
	})
}

// sharedPassed hands the shared stream to a helper — same violation.
func sharedPassed(src *rng.Source, out []float64) {
	pool.Do(0, len(out), func(i int) {
		out[i] = draw(src) // want `\*rng\.Source "src" is shared across pool work items`
	})
}

// sharedField reaches the stream through a captured struct.
type runCtx struct {
	Root *rng.Source
}

func sharedField(t *runCtx, out []float64) {
	_ = pool.DoErr(0, len(out), func(i int) error {
		out[i] = t.Root.Float64() // want `\*rng\.Source "t.Root" is shared across pool work items`
		return nil
	})
}

// perItemSplit derives a per-item stream inside the closure — the
// contract's canonical form (engine.go, fig4.go).
func perItemSplit(src *rng.Source, out []float64) {
	pool.Do(0, len(out), func(i int) {
		out[i] = src.SplitN("item", i).Float64()
	})
}

// fieldSplit splits a captured struct field per item.
func fieldSplit(t *runCtx, out []float64) {
	_ = pool.DoErr(0, len(out), func(i int) error {
		out[i] = t.Root.SplitN("cell", i).Float64()
		return nil
	})
}

// preSplit indexes a pre-split per-item stream table — the other
// sanctioned pattern.
func preSplit(src *rng.Source, out []float64) {
	streams := make([]*rng.Source, len(out))
	for i := range streams {
		streams[i] = src.SplitN("item", i)
	}
	pool.Do(0, len(out), func(i int) {
		out[i] = streams[i].Float64()
	})
}

// localStream builds a stream inside the item from plain captured data;
// nothing is shared.
func localStream(seed int64, out []float64) {
	pool.Do(0, len(out), func(i int) {
		src := rng.New(seed + int64(i))
		out[i] = src.Float64()
	})
}

// outsidePool draws from a shared stream sequentially — fine, the
// contract only governs pool closures.
func outsidePool(src *rng.Source, out []float64) {
	for i := range out {
		out[i] = src.Float64()
	}
}

// suppressed documents a deliberate exception.
func suppressed(src *rng.Source, out []float64) {
	pool.Do(1, len(out), func(i int) {
		out[i] = src.Float64() //xbar:allow fixture: workers pinned to 1, serial by construction
	})
}

func draw(s *rng.Source) float64 { return s.Float64() }
