// Package detfix exercises the detrand analyzer: it sits under the
// deterministic prefix xbarsec/internal/experiment, so ambient state
// reads must be flagged and the sanctioned idioms must not be.
package detfix

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

func ambient() {
	_ = rand.Intn(10)        // want `math/rand\.Intn draws from the process-global source`
	_ = rand.Float64()       // want `math/rand\.Float64 draws from the process-global source`
	_ = time.Now()           // want `time\.Now in a deterministic package`
	_ = os.Getenv("HOME")    // want `os\.Getenv in a deterministic package`
	_, _ = os.LookupEnv("X") // want `os\.LookupEnv in a deterministic package`
}

// seeded generators are explicitly allowed: they are pure functions of
// their seed.
func seeded() {
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(10)
}

// suppressed carries the escape hatch, reason and all.
func suppressed() {
	_ = time.Now() //xbar:allow fixture: demonstrating the annotated exception
}

// mapOrder feeds map iteration order into an ordered accumulator.
func mapOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside map iteration`
	}
	return out
}

// mapOrderSorted is the sanctioned collect-then-sort idiom.
func mapOrderSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mapOrderLocal appends to a loop-local accumulator — harmless, the
// slice dies with the iteration.
func mapOrderLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		total += len(evens)
	}
	return total
}
