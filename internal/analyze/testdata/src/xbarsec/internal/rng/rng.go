// Package rng is the fixture twin of the real xbarsec/internal/rng: the
// analyzers match on the import path and the Source/Split/SplitN names,
// so this stub only needs the shape.
package rng

type Source struct{ seed int64 }

func New(seed int64) *Source { return &Source{seed: seed} }

func (s *Source) Split(label string) *Source         { return &Source{seed: s.seed + 1} }
func (s *Source) SplitN(label string, n int) *Source { return &Source{seed: s.seed + int64(n)} }
func (s *Source) Float64() float64                   { return 0.5 }
func (s *Source) Intn(n int) int                     { return 0 }
