// Package hafix exercises the hotalloc analyzer: allocating constructs
// inside //xbar:hotpath functions, next to the exempt idioms (scratch
// reuse, panic arguments) and an unannotated twin that must stay silent.
package hafix

import "fmt"

type scratch struct {
	buf []float64
}

//xbar:hotpath
func growingAppend(dst []float64, xs []float64) []float64 {
	for _, x := range xs {
		dst = append(dst, x) // want `append in a //xbar:hotpath function may grow the backing array`
	}
	return dst
}

//xbar:hotpath
func reuseAppend(sc *scratch, xs []float64) {
	buf := sc.buf[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	sc.buf = buf
}

//xbar:hotpath
func directReuseAppend(sc *scratch, x float64) {
	sc.buf = append(sc.buf[:0], x)
}

//xbar:hotpath
func formatting(n int) {
	_ = fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf allocates`
	_ = fmt.Sprint(n)          // want `fmt\.Sprint allocates`
	_ = fmt.Errorf("n=%d", n)  // want `fmt\.Errorf allocates`
}

//xbar:hotpath
func coldPanic(rows, cols int) {
	if rows != cols {
		panic(fmt.Sprintf("hafix: %dx%d not square", rows, cols))
	}
}

//xbar:hotpath
func sliceLiteral() []float64 {
	return []float64{1, 2, 3} // want `slice literal allocates in a //xbar:hotpath function`
}

//xbar:hotpath
func mapLiteral() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates in a //xbar:hotpath function`
}

func box(v any) any { return v }

//xbar:hotpath
func boxing(n int) any {
	return box(n) // want `boxes a concrete int into an interface`
}

//xbar:hotpath
func noBoxing(v any) any {
	return box(v) // interface to interface: the box already exists
}

//xbar:hotpath
func suppressedAppend(dst []float64, x float64) []float64 {
	return append(dst, x) //xbar:allow fixture: amortized growth measured harmless
}

// unannotated may allocate freely: hotalloc only reads //xbar:hotpath
// bodies.
func unannotated(n int) []string {
	out := []string{}
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%d", i))
	}
	return out
}
