// Package pool is the fixture twin of the real xbarsec/internal/pool.
package pool

func Do(workers, n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func DoErr(workers, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
