package analyze_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbarsec/internal/analyze"
	"xbarsec/internal/analyze/analyzertest"
)

// withSurfaceFlags points apisurface at a test-owned baseline path (and
// optionally write mode), restoring the defaults afterwards.
func withSurfaceFlags(t *testing.T, baseline string, write bool) {
	t.Helper()
	set := func(name, val string) {
		t.Helper()
		if err := analyze.APISurface.Flags.Set(name, val); err != nil {
			t.Fatal(err)
		}
	}
	set("baseline", baseline)
	if write {
		set("write", "true")
	}
	t.Cleanup(func() {
		_ = analyze.APISurface.Flags.Set("baseline", "")
		_ = analyze.APISurface.Flags.Set("write", "false")
	})
}

// genBaseline snapshots the fixture api package into dir/surface.json via
// the analyzer's own -write path and returns the path.
func genBaseline(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "surface.json")
	withSurfaceFlags(t, path, true)
	l := analyzertest.NewLoader("testdata")
	if _, err := l.Diagnostics(analyze.APISurface, "xbarsec/api"); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	if err := analyze.APISurface.Flags.Set("write", "false"); err != nil {
		t.Fatal(err)
	}
	return path
}

// mutate rewrites the baseline JSON through fn.
func mutate(t *testing.T, path string, fn func(s map[string]any)) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s map[string]any
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	fn(s)
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// check runs apisurface against the fixture package and returns the
// diagnostic messages.
func check(t *testing.T, baseline string) []string {
	t.Helper()
	withSurfaceFlags(t, baseline, false)
	l := analyzertest.NewLoader("testdata")
	diags, err := l.Diagnostics(analyze.APISurface, "xbarsec/api")
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.Message
	}
	return msgs
}

func wantOne(t *testing.T, msgs []string, substr string) {
	t.Helper()
	if len(msgs) != 1 || !strings.Contains(msgs[0], substr) {
		t.Fatalf("got %v, want one diagnostic containing %q", msgs, substr)
	}
}

// TestAPISurfaceClean: a fresh snapshot diffs clean against itself.
func TestAPISurfaceClean(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	if msgs := check(t, path); len(msgs) != 0 {
		t.Fatalf("clean surface got diagnostics: %v", msgs)
	}
}

// TestAPISurfaceRemovedDecl: deleting an exported declaration (here
// simulated by a baseline that still records one) is a break.
func TestAPISurfaceRemovedDecl(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	mutate(t, path, func(s map[string]any) {
		s["decls"].(map[string]any)["Gone"] = "func Gone()"
	})
	wantOne(t, check(t, path), "exported declaration Gone was removed")
}

// TestAPISurfaceFieldRemoved: deleting a struct field is a break even
// when the struct itself survives.
func TestAPISurfaceFieldRemoved(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	mutate(t, path, func(s map[string]any) {
		st := s["structs"].(map[string]any)["Error"].(map[string]any)
		st["Legacy"] = "string `json:\"legacy\"`"
	})
	wantOne(t, check(t, path), "field Error.Legacy was removed")
}

// TestAPISurfaceTagChanged: a JSON tag edit rewires the wire format — a
// break. The baseline records the old tag; the fixture carries the "new"
// one.
func TestAPISurfaceTagChanged(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	mutate(t, path, func(s map[string]any) {
		st := s["structs"].(map[string]any)["Error"].(map[string]any)
		st["Code"] = "ErrorCode `json:\"error_code\"`"
	})
	msgs := check(t, path)
	wantOne(t, msgs, "field Error.Code changed")
	if !strings.Contains(msgs[0], "error_code") {
		t.Fatalf("diagnostic %q should quote the old tag", msgs[0])
	}
}

// TestAPISurfaceCodeValueChanged: error-code wire values are frozen.
func TestAPISurfaceCodeValueChanged(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	mutate(t, path, func(s map[string]any) {
		s["codes"].(map[string]any)["CodeBadRequest"] = "bad_req"
	})
	wantOne(t, check(t, path), "error code CodeBadRequest changed wire value")
}

// TestAPISurfaceStatusChanged: the code→HTTP-status map is protocol.
func TestAPISurfaceStatusChanged(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	mutate(t, path, func(s map[string]any) {
		s["status"].(map[string]any)["bad_request"] = 418
	})
	wantOne(t, check(t, path), `HTTP status for code "bad_request" changed: 418 -> 400`)
}

// TestAPISurfaceMajorBumpForgives: the same removal passes once the
// package's Major outruns the baseline's.
func TestAPISurfaceMajorBumpForgives(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	mutate(t, path, func(s map[string]any) {
		s["decls"].(map[string]any)["Gone"] = "func Gone()"
		s["major"] = 0 // fixture package is at Major = 1
	})
	if msgs := check(t, path); len(msgs) != 0 {
		t.Fatalf("major bump should forgive the removal, got %v", msgs)
	}
}

// TestAPISurfaceAdditionsAllowed: a baseline missing entries the package
// now has (the additive path) stays clean.
func TestAPISurfaceAdditionsAllowed(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	mutate(t, path, func(s map[string]any) {
		delete(s["decls"].(map[string]any), "Health")
		delete(s["structs"].(map[string]any), "Health")
		delete(s["codes"].(map[string]any), "CodeInternal")
	})
	if msgs := check(t, path); len(msgs) != 0 {
		t.Fatalf("additions must not fail the check, got %v", msgs)
	}
}

// TestAPISurfaceMissingBaseline: no baseline is itself a finding, so the
// gate cannot be silently disarmed by deleting the file.
func TestAPISurfaceMissingBaseline(t *testing.T) {
	wantOne(t, check(t, filepath.Join(t.TempDir(), "nope.json")),
		"missing api surface baseline")
}

// TestAPISurfaceWriteRefusesWithoutBump: regenerating over a same-version
// baseline errors — the workflow is bump first, then make api-baseline.
func TestAPISurfaceWriteRefusesWithoutBump(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	withSurfaceFlags(t, path, true)
	l := analyzertest.NewLoader("testdata")
	_, err := l.Diagnostics(analyze.APISurface, "xbarsec/api")
	if err == nil || !strings.Contains(err.Error(), "refusing to regenerate") {
		t.Fatalf("want refusal error, got %v", err)
	}
}

// TestAPISurfaceWriteAfterBump: once the recorded version differs,
// regeneration succeeds and the new snapshot diffs clean.
func TestAPISurfaceWriteAfterBump(t *testing.T) {
	path := genBaseline(t, t.TempDir())
	mutate(t, path, func(s map[string]any) {
		s["minor"] = 99
		s["decls"].(map[string]any)["Gone"] = "func Gone()"
	})
	withSurfaceFlags(t, path, true)
	l := analyzertest.NewLoader("testdata")
	if _, err := l.Diagnostics(analyze.APISurface, "xbarsec/api"); err != nil {
		t.Fatalf("regeneration after a bump should succeed: %v", err)
	}
	if err := analyze.APISurface.Flags.Set("write", "false"); err != nil {
		t.Fatal(err)
	}
	if msgs := check(t, path); len(msgs) != 0 {
		t.Fatalf("regenerated baseline should diff clean, got %v", msgs)
	}
}
