package analyze

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotAlloc checks functions annotated //xbar:hotpath for allocating
// constructs. The annotated kernels back every AllocsPerRun guarantee in
// the test suite; this analyzer extends that guarantee from the paths the
// tests happen to drive to every path in the function body.
//
// Flagged: append (unless the destination is the x[:0] reuse idiom —
// either directly or via a variable that is resliced to zero length
// somewhere in the same function, the scratch-buffer pattern), the
// fmt.Sprint*/fmt.Errorf family, slice and map composite literals, and
// interface boxing of a concrete value at a call site. Arguments of
// panic statements are exempt: a panicking shape check is unreachable on
// the hot path it guards.
var HotAlloc = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "forbid allocating constructs in functions annotated //xbar:hotpath",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	allow := newAllowSet(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if inTestFile(pass.Fset, fn.Pos()) || fn.Body == nil {
			return
		}
		if _, ok := hasDirective(fn.Doc, hotpathDirective); !ok {
			return
		}
		checkHotBody(pass, allow, fn)
	})
	return nil, nil
}

func checkHotBody(pass *analysis.Pass, allow *allowed, fn *ast.FuncDecl) {
	checkHotNode(pass, allow, fn.Body, scratchVars(pass, fn.Body), false)
}

// checkHotNode walks the body recursively; exempt is true inside a
// panic(...) argument list.
func checkHotNode(pass *analysis.Pass, allow *allowed, n ast.Node, scratch map[types.Object]bool, exempt bool) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.CallExpr:
		if isPanicCall(pass, x) {
			// The panic expression itself (and its allocations) is cold.
			for _, a := range x.Args {
				checkHotNode(pass, allow, a, scratch, true)
			}
			return
		}
		if !exempt {
			checkHotCall(pass, allow, x, scratch)
		}
	case *ast.CompositeLit:
		if !exempt {
			checkHotComposite(pass, allow, x)
		}
	}
	// Recurse over children with the current exemption.
	children(n, func(c ast.Node) {
		checkHotNode(pass, allow, c, scratch, exempt)
	})
}

// children invokes f on each direct child node of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

func checkHotCall(pass *analysis.Pass, allow *allowed, call *ast.CallExpr, scratch map[types.Object]bool) {
	// Builtin append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			if !reuseAppend(pass, call, scratch) {
				allow.reportf(pass, call.Pos(),
					"append in a //xbar:hotpath function may grow the backing array; reuse a scratch buffer via the x[:0] idiom or preallocate")
			}
			return
		}
	}
	// fmt.Sprint* / fmt.Errorf.
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Sprint", "Sprintf", "Sprintln", "Errorf":
			allow.reportf(pass, call.Pos(),
				"fmt.%s allocates (formatting state and boxed operands); hot paths must not format",
				fn.Name())
			return
		}
	}
	// Interface boxing: a concrete-typed argument passed to an
	// interface-typed parameter forces a heap allocation per call.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.IsNil() || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type.Underlying()) {
			continue // interface→interface carries the existing box
		}
		allow.reportf(pass, arg.Pos(),
			"argument boxes a concrete %s into an interface inside a //xbar:hotpath function",
			types.TypeString(at.Type, types.RelativeTo(pass.Pkg)))
	}
}

func checkHotComposite(pass *analysis.Pass, allow *allowed, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		allow.reportf(pass, lit.Pos(),
			"slice literal allocates in a //xbar:hotpath function; hoist it to a package var or the caller")
	case *types.Map:
		allow.reportf(pass, lit.Pos(),
			"map literal allocates in a //xbar:hotpath function; hoist it to a package var or the caller")
	}
}

// reuseAppend reports whether an append call follows the scratch-reuse
// idiom: append(x[:0], ...) directly, or append(s, ...) where s is a
// variable that is (re)initialized from a [:0] reslice somewhere in the
// function — the amortized high-water-mark pattern of the coalescer.
func reuseAppend(pass *analysis.Pass, call *ast.CallExpr, scratch map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	dst := ast.Unparen(call.Args[0])
	if isZeroReslice(pass, dst) {
		return true
	}
	if id, ok := dst.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil && scratch[obj] {
			return true
		}
	}
	return false
}

// scratchVars collects every variable assigned an x[:0] reslice anywhere
// in the body.
func scratchVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) && len(as.Rhs) != 1 {
				break
			}
			rhs = ast.Unparen(rhs)
			// `s = x[:0]` and `s = append(x[:0], ...)` both reset s to a
			// reused backing array.
			if call, ok := rhs.(*ast.CallExpr); ok && len(call.Args) > 0 {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						rhs = ast.Unparen(call.Args[0])
					}
				}
			}
			if !isZeroReslice(pass, rhs) {
				continue
			}
			li := i
			if li >= len(as.Lhs) {
				li = 0
			}
			if id, ok := as.Lhs[li].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isZeroReslice matches x[:0] (and x[:0:c]).
func isZeroReslice(pass *analysis.Pass, e ast.Expr) bool {
	sl, ok := e.(*ast.SliceExpr)
	if !ok || sl.Low != nil || sl.High == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sl.High]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}

// isPanicCall matches the builtin panic.
func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// callSignature returns the static signature of the called function, or
// nil for builtins and type conversions.
func callSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
