package analyze

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Import paths of the packages whose types anchor the rngsplit contract.
// The analyzer tests shadow these with fixture packages of the same path.
const (
	rngPkgPath  = "xbarsec/internal/rng"
	poolPkgPath = "xbarsec/internal/pool"
)

// RngSplit enforces the worker-invariance contract from internal/pool's
// package comment: work item i must derive all its randomness from its
// index via Split/SplitN. A *rng.Source captured by the closure passed to
// pool.Do/pool.DoErr is therefore only usable as a Split/SplitN receiver;
// any draw from it would interleave one stream across concurrently
// scheduled items. Indexing a captured []*rng.Source (a pre-split
// per-item stream table) is the other sanctioned pattern.
var RngSplit = &analysis.Analyzer{
	Name: "rngsplit",
	Doc: "a *rng.Source captured by a pool.Do/DoErr closure must only be used " +
		"via Split/SplitN",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runRngSplit,
}

func runRngSplit(pass *analysis.Pass) (any, error) {
	allow := newAllowSet(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if inTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != poolPkgPath {
			return
		}
		if fn.Name() != "Do" && fn.Name() != "DoErr" {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
		if !ok {
			// A named worker function can't capture loop-local sources the
			// way a literal can; out of scope.
			return
		}
		checkPoolClosure(pass, allow, lit)
	})
	return nil, nil
}

// checkPoolClosure reports every use of a captured *rng.Source inside the
// worker closure that is not the receiver of a Split/SplitN call.
func checkPoolClosure(pass *analysis.Pass, allow *allowed, lit *ast.FuncLit) {
	// Walk with an explicit parent stack so each *rng.Source-typed
	// expression can be judged by how its parent consumes it.
	var stack []ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		e, ok := n.(ast.Expr)
		if !ok || !isRngSource(pass, e) {
			return true
		}
		// The Sel identifier of a field selector is judged via its parent
		// SelectorExpr, not on its own (its object is the field, declared
		// at the struct definition — always "outside the closure").
		if len(stack) >= 2 {
			if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == n {
				return true
			}
		}
		if !capturedByClosure(pass, e, lit) {
			return true
		}
		if splitReceiver(pass, e, stack) {
			return true
		}
		allow.reportf(pass, e.Pos(),
			"*rng.Source %q is shared across pool work items; derive a per-item stream with Split/SplitN (or pre-split a slice outside the pool call)",
			exprString(e))
		return true
	})
}

// isRngSource reports whether e's static type is *rng.Source, judging
// only Ident and SelectorExpr nodes: an IndexExpr over a captured
// []*rng.Source is the sanctioned pre-split table and a call result is a
// fresh stream, so neither is a shared-source use.
func isRngSource(pass *analysis.Pass, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == rngPkgPath && named.Obj().Name() == "Source"
}

// capturedByClosure reports whether e's root variable is declared outside
// the closure — a free variable the closure shares with other work items.
func capturedByClosure(pass *analysis.Pass, e ast.Expr, lit *ast.FuncLit) bool {
	base := baseIdent(e)
	if base == nil {
		return false
	}
	// Skip the Sel half of selector expressions: ObjectOf on a field
	// selector yields the field, whose Pos is the struct definition.
	if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel == base {
		return false
	}
	obj, ok := pass.TypesInfo.ObjectOf(base).(*types.Var)
	if !ok {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// splitReceiver reports whether, per the parent stack, e is exactly the
// receiver of a .Split(...) or .SplitN(...) call.
func splitReceiver(pass *analysis.Pass, e ast.Expr, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	sel, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	if !ok || sel.X != e {
		return false
	}
	if sel.Sel.Name != "Split" && sel.Sel.Name != "SplitN" {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && call.Fun == sel
}

// exprString renders a flagged expression compactly for the diagnostic.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := baseIdent(x); base != nil {
			return base.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return "source"
}
