package analyze_test

import (
	"testing"

	"xbarsec/internal/analyze"
	"xbarsec/internal/analyze/analyzertest"
)

func TestHotAlloc(t *testing.T) {
	analyzertest.Run(t, "testdata", analyze.HotAlloc,
		"xbarsec/internal/tensor/hafix")
}
