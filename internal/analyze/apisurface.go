package analyze

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// APISurface turns the api/doc.go versioning policy into CI: the exported
// surface of package api is recorded in a committed baseline
// (api/testdata/surface.json) and any removal or change relative to that
// baseline fails the build unless api.Major was bumped. Additions are
// fine — the protocol is additive within a major version.
//
// With -apisurface.write the analyzer regenerates the baseline instead of
// diffing, refusing unless Major or Minor changed relative to the
// committed one (a surface edit without a version bump is exactly the
// mistake the checker exists to catch).
var APISurface = &analysis.Analyzer{
	Name: "apisurface",
	Doc:  "fail on non-additive changes to the exported api/ surface without an api.Major bump",
	Run:  runAPISurface,
}

var (
	apiPkgFlag      string
	baselineFlag    string
	writeSurfaceVar bool
)

func init() {
	APISurface.Flags.StringVar(&apiPkgFlag, "pkg", "xbarsec/api",
		"import path of the versioned protocol package")
	APISurface.Flags.StringVar(&baselineFlag, "baseline", "",
		"baseline path (default <pkgdir>/testdata/surface.json)")
	APISurface.Flags.BoolVar(&writeSurfaceVar, "write", false,
		"regenerate the baseline (requires a Major or Minor bump)")
}

// Surface is the recorded shape of the protocol package. Maps marshal
// with sorted keys, so the JSON form is canonical and diffs are readable.
type Surface struct {
	// Major and Minor mirror api.Major/api.Minor at snapshot time.
	Major int `json:"major"`
	Minor int `json:"minor"`
	// Decls maps every exported package-level object to its declaration
	// string — a coarse net over the whole surface (funcs, consts, vars,
	// type names). Removing or re-typing any of them is a break.
	Decls map[string]string `json:"decls"`
	// Structs refines exported struct types: field name → "type `tag`".
	// JSON tags are part of the wire protocol, so a tag edit is a break.
	Structs map[string]map[string]string `json:"structs"`
	// Codes maps ErrorCode constant names to their wire values.
	Codes map[string]string `json:"codes"`
	// Status maps each error-code wire value ("default" for the fallback)
	// to the HTTP status the server sends with it.
	Status map[string]int `json:"status"`
}

func runAPISurface(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() != apiPkgFlag {
		return nil, nil
	}
	cur := extractSurface(pass)
	path := baselineFlag
	if path == "" {
		dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
		path = filepath.Join(dir, "testdata", "surface.json")
	}
	if writeSurfaceVar {
		return nil, writeSurface(cur, path)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		pass.Reportf(pass.Files[0].Pos(),
			"missing api surface baseline %s (run `make api-baseline`): %v", path, err)
		return nil, nil
	}
	var base Surface
	if err := json.Unmarshal(raw, &base); err != nil {
		pass.Reportf(pass.Files[0].Pos(), "corrupt api surface baseline %s: %v", path, err)
		return nil, nil
	}
	if cur.Major != base.Major {
		// A major bump resets the surface contract; the stale baseline is
		// refreshed by make api-baseline, which this bump unlocks.
		return nil, nil
	}
	for _, breakage := range diffSurface(base, cur) {
		pass.Reportf(pass.Files[0].Pos(),
			"non-additive api change without an api.Major bump: %s (policy: api/doc.go; baseline: %s)",
			breakage, path)
	}
	return nil, nil
}

// writeSurface regenerates the baseline, refusing when the version is
// unchanged relative to the existing one.
func writeSurface(cur Surface, path string) error {
	if raw, err := os.ReadFile(path); err == nil {
		var base Surface
		if err := json.Unmarshal(raw, &base); err == nil &&
			base.Major == cur.Major && base.Minor == cur.Minor {
			return fmt.Errorf(
				"apisurface: refusing to regenerate %s: api.Major/api.Minor still v%d.%d — bump the version the change rides on first (api/doc.go)",
				path, cur.Major, cur.Minor)
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	out, err := json.MarshalIndent(cur, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// diffSurface lists every way cur narrows or mutates base. Additions are
// never breaks.
func diffSurface(base, cur Surface) []string {
	var out []string
	for _, name := range sortedKeys(base.Decls) {
		switch got, ok := cur.Decls[name]; {
		case !ok:
			out = append(out, fmt.Sprintf("exported declaration %s was removed", name))
		case got != base.Decls[name]:
			out = append(out, fmt.Sprintf("exported declaration %s changed: %q -> %q", name, base.Decls[name], got))
		}
	}
	for _, st := range sortedKeys(base.Structs) {
		curFields, ok := cur.Structs[st]
		if !ok {
			continue // the struct removal is already a Decls finding
		}
		for _, f := range sortedKeys(base.Structs[st]) {
			switch got, ok := curFields[f]; {
			case !ok:
				out = append(out, fmt.Sprintf("field %s.%s was removed", st, f))
			case got != base.Structs[st][f]:
				out = append(out, fmt.Sprintf("field %s.%s changed: %q -> %q", st, f, base.Structs[st][f], got))
			}
		}
	}
	for _, c := range sortedKeys(base.Codes) {
		switch got, ok := cur.Codes[c]; {
		case !ok:
			out = append(out, fmt.Sprintf("error code %s was removed", c))
		case got != base.Codes[c]:
			out = append(out, fmt.Sprintf("error code %s changed wire value: %q -> %q", c, base.Codes[c], got))
		}
	}
	if len(base.Status) > 0 && len(cur.Status) > 0 && !reflect.DeepEqual(base.Status, cur.Status) {
		for _, code := range sortedKeys(base.Status) {
			got, ok := cur.Status[code]
			if ok && got == base.Status[code] {
				continue
			}
			out = append(out, fmt.Sprintf("HTTP status for code %q changed: %d -> %d", code, base.Status[code], got))
		}
	}
	return out
}

// extractSurface computes the Surface of the package under analysis.
func extractSurface(pass *analysis.Pass) Surface {
	s := Surface{
		Decls:   make(map[string]string),
		Structs: make(map[string]map[string]string),
		Codes:   make(map[string]string),
		Status:  make(map[string]int),
	}
	qual := types.RelativeTo(pass.Pkg)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		s.Decls[name] = types.ObjectString(obj, qual)
		switch obj := obj.(type) {
		case *types.Const:
			switch {
			case name == "Major":
				v, _ := constant.Int64Val(constant.ToInt(obj.Val()))
				s.Major = int(v)
			case name == "Minor":
				v, _ := constant.Int64Val(constant.ToInt(obj.Val()))
				s.Minor = int(v)
			case isErrorCodeType(obj.Type()):
				s.Codes[name] = constant.StringVal(obj.Val())
			}
		case *types.TypeName:
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			fields := make(map[string]string)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() {
					continue
				}
				fields[f.Name()] = types.TypeString(f.Type(), qual) + " `" + st.Tag(i) + "`"
			}
			s.Structs[name] = fields
		}
	}
	extractStatusMap(pass, &s)
	return s
}

// isErrorCodeType matches the package's named ErrorCode string type.
func isErrorCodeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "ErrorCode"
}

// extractStatusMap reads the code→HTTP-status mapping out of the
// ErrorCode.HTTPStatus switch statement: each case arm's constant code
// values map to the arm's constant return, the default arm to "default".
// The mapping is protocol surface — servers and clients both key retry
// behavior off it — so it is snapshotted like any field.
func extractStatusMap(pass *analysis.Pass, s *Surface) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "HTTPStatus" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				for _, stmt := range sw.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					status, ok := caseReturnStatus(pass, cc)
					if !ok {
						continue
					}
					if cc.List == nil {
						s.Status["default"] = status
						continue
					}
					for _, e := range cc.List {
						tv, ok := pass.TypesInfo.Types[e]
						if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
							continue
						}
						s.Status[constant.StringVal(tv.Value)] = status
					}
				}
				return false
			})
		}
	}
}

// caseReturnStatus extracts the constant integer returned by a case arm.
func caseReturnStatus(pass *analysis.Pass, cc *ast.CaseClause) (int, bool) {
	for _, stmt := range cc.Body {
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		tv, ok := pass.TypesInfo.Types[ret.Results[0]]
		if !ok || tv.Value == nil {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(tv.Value))
		return int(v), ok
	}
	return 0, false
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
