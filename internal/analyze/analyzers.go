package analyze

import "golang.org/x/tools/go/analysis"

// All returns the xbarvet analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{DetRand, RngSplit, HotAlloc, APISurface}
}
