package analyze

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// defaultDetPkgs are the import-path prefixes of the deterministic
// packages: every experiment result must be a pure function of its spec,
// so nothing under these prefixes may consult ambient process state.
// internal/rng is included (it builds seeded streams but must never draw
// from the global source) and so is internal/service, whose session-TTL
// clock reads are the sanctioned, //xbar:allow-annotated exception. The
// durability layer (wal, faultinject) and the SDK (client) are held to
// the same bar: fault schedules and retry jitter come from seeded
// streams, and the few wall-clock reads (backoff sleeps) carry
// annotations.
var defaultDetPkgs = []string{
	"xbarsec/internal/experiment",
	"xbarsec/internal/crossbar",
	"xbarsec/internal/nn",
	"xbarsec/internal/surrogate",
	"xbarsec/internal/tensor",
	"xbarsec/internal/oracle",
	"xbarsec/internal/rng",
	"xbarsec/internal/service",
	"xbarsec/internal/wal",
	"xbarsec/internal/faultinject",
	"xbarsec/client",
}

// seededRandCtors are the math/rand package-level functions that build
// explicitly seeded generators rather than drawing from the process-global
// source; they are deterministic and allowed.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// DetRand is the determinism analyzer; see the package comment.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid ambient randomness, clocks, env reads and ordered map iteration " +
		"in the deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetRand,
}

// detPkgsFlag overrides the checked package-prefix list (comma-separated);
// the analyzer tests point it at their fixture packages.
var detPkgsFlag string

func init() {
	DetRand.Flags.StringVar(&detPkgsFlag, "pkgs",
		strings.Join(defaultDetPkgs, ","),
		"comma-separated import-path prefixes of deterministic packages")
}

func runDetRand(pass *analysis.Pass) (any, error) {
	if !detPkgMatch(pass.Pkg.Path()) {
		return nil, nil
	}
	allow := newAllowSet(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if inTestFile(pass.Fset, n.Pos()) {
			return
		}
		checkAmbientCall(pass, allow, n.(*ast.CallExpr))
	})
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push || inTestFile(pass.Fset, n.Pos()) {
			return true
		}
		checkMapRange(pass, allow, n.(*ast.RangeStmt), enclosingFuncBody(stack))
		return true
	})
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function on the
// stack, or nil at package scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

func detPkgMatch(path string) bool {
	for _, p := range strings.Split(detPkgsFlag, ",") {
		p = strings.TrimSpace(p)
		if p != "" && (path == p || strings.HasPrefix(path, p+"/")) {
			return true
		}
	}
	return false
}

// checkAmbientCall flags calls that read ambient process state: the
// global math/rand source, the wall clock, or the environment.
func checkAmbientCall(pass *analysis.Pass, allow *allowed, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Only package-level functions matter here; methods on explicitly
	// constructed values (rand.Rand, time.Time) are deterministic.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !seededRandCtors[fn.Name()] {
			allow.reportf(pass, call.Pos(),
				"%s.%s draws from the process-global source; use an explicit *rng.Source (seeded by the spec) instead",
				fn.Pkg().Path(), fn.Name())
		}
	case "time":
		if fn.Name() == "Now" {
			allow.reportf(pass, call.Pos(),
				"time.Now in a deterministic package: results must be a pure function of the spec")
		}
	case "os":
		if fn.Name() == "Getenv" || fn.Name() == "LookupEnv" {
			allow.reportf(pass, call.Pos(),
				"os.%s in a deterministic package: configuration must arrive through the spec, not the environment",
				fn.Name())
		}
	}
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// appends to a slice declared outside the loop: the accumulator's element
// order then depends on Go's randomized map iteration order, which leaks
// nondeterminism into anything ordered downstream. The collect-then-sort
// idiom — the accumulator is passed to sort.*/slices.Sort* later in the
// same function — is the sanctioned fix and is not flagged.
func checkMapRange(pass *analysis.Pass, allow *allowed, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		// append's first argument names the accumulator; if that variable
		// was declared before the range statement, its final order is map
		// iteration order.
		base := baseIdent(call.Args[0])
		if base == nil {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(base)
		if obj == nil || obj.Pos() == 0 {
			return true
		}
		if obj.Pos() < rng.Pos() && !sortedAfter(pass, fnBody, rng, obj) {
			allow.reportf(pass, call.Pos(),
				"append to %q inside map iteration feeds map order into an ordered accumulator; sort it afterwards or iterate sorted keys",
				base.Name)
		}
		return true
	})
}

// sortedAfter reports whether the accumulator obj is passed to a sorting
// function after the map loop, anywhere in the enclosing function.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if fnBody == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || !isSortFunc(fn.Pkg().Path(), fn.Name()) {
			return true
		}
		for _, a := range call.Args {
			if id := baseIdent(a); id != nil && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortFunc matches the stdlib sorting entry points.
func isSortFunc(pkg, name string) bool {
	switch pkg {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// calleeFunc resolves a call's static callee, or nil for builtins,
// function values and type conversions.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// baseIdent walks selector/index/slice expressions down to the root
// identifier: streams[i] → streams, t.root → t.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
