package surrogate

import (
	"math"
	"testing"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// referenceTrain is the per-sample surrogate SGD loop exactly as shipped
// before the batched rewrite (surrogate.go @ PR 1), minus input
// validation (the caller validates).
func referenceTrain(qs *oracle.QuerySet, cfg Config, src *rng.Source) *Model {
	usePower := cfg.Lambda > 0 && qs.P != nil
	q, n, m := qs.Len(), qs.U.Cols(), qs.Y.Cols()
	net, err := nn.NewNetwork(m, n, nn.ActLinear, nn.LossMSE)
	if err != nil {
		panic(err)
	}
	net.InitXavier(src.Split("init"))
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	sgd := src.Split("sgd")
	velocity := tensor.New(m, n)
	grad := tensor.New(m, n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := sgd.Perm(q)
		for start := 0; start < q; start += batch {
			end := start + batch
			if end > q {
				end = q
			}
			grad.Fill(0)
			var colNorms []float64
			if usePower {
				colNorms = net.W.ColAbsSums()
			}
			for _, idx := range perm[start:end] {
				u := qs.U.Row(idx)
				y := qs.Y.Row(idx)
				s := net.W.MatVec(u)
				for i := range s {
					d := 2 * (s[i] - y[i]) / float64(m)
					if d == 0 {
						continue
					}
					row := grad.Row(i)
					for j, uj := range u {
						row[j] += d * uj
					}
				}
				if usePower {
					e := tensor.Dot(u, colNorms) - qs.P[idx]
					coeff := cfg.Lambda * 2 * e
					for i := 0; i < m; i++ {
						wrow := net.W.Row(i)
						grow := grad.Row(i)
						for j, uj := range u {
							if uj == 0 {
								continue
							}
							switch {
							case wrow[j] > 0:
								grow[j] += coeff * uj
							case wrow[j] < 0:
								grow[j] -= coeff * uj
							}
						}
					}
				}
			}
			scale := 1 / float64(end-start)
			velocity.Scale(cfg.Momentum)
			velocity.AddScaled(-cfg.LearningRate*scale, grad)
			net.W.AddMatrix(velocity)
		}
	}
	return &Model{Net: net}
}

// equivQuerySet builds a power-annotated query set from a small trained
// victim on an ideal crossbar.
func equivQuerySet(t *testing.T, queries int) *oracle.QuerySet {
	t.Helper()
	src := rng.New(31)
	ds, err := dataset.GenerateMNISTLike(src.Split("data"), 90, dataset.DefaultMNISTLikeConfig())
	if err != nil {
		t.Fatal(err)
	}
	victim, _, err := nn.TrainNew(ds, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 3, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true,
	}, src.Split("train"))
	if err != nil {
		t.Fatal(err)
	}
	hw, err := crossbar.NewNetwork(victim, crossbar.DefaultDeviceConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.New(hw, oracle.Config{Mode: oracle.RawOutput, MeasurePower: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := oracle.Collect(orc, ds, queries, src.Split("collect"))
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// TestTrainMatchesPerSampleReference pins the batched surrogate trainer —
// including the restructured branch-free power term — to the old
// per-sample loop, bit for bit, with and without the power loss, and with
// a remainder mini-batch (50 queries, batch 32 -> 32 + 18). Under a
// non-bit-exact tensor backend (-tensor.fast) the pin relaxes to a tight
// relative tolerance, as in the nn equivalence suite.
func TestTrainMatchesPerSampleReference(t *testing.T) {
	const relTol = 1e-8
	exact := tensor.Active().BitExact()
	qs := equivQuerySet(t, 50)
	for _, lambda := range []float64{0, 0.004} {
		cfg := Config{Lambda: lambda, Epochs: 4, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9}
		want := referenceTrain(qs, cfg, rng.New(77))
		got, err := Train(qs, cfg, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		gd, wd := got.Net.W.Data(), want.Net.W.Data()
		for i := range gd {
			if exact {
				if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
					t.Fatalf("lambda=%v: weight %d: %v vs %v", lambda, i, gd[i], wd[i])
				}
				continue
			}
			if d := math.Abs(gd[i] - wd[i]); d > relTol*math.Abs(wd[i])+relTol*relTol {
				t.Fatalf("lambda=%v: weight %d off by %g under %s backend: %v vs %v",
					lambda, i, d, tensor.ActiveName(), gd[i], wd[i])
			}
		}
	}
}
