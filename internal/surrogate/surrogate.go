// Package surrogate implements the paper's Section IV black-box attack:
// a surrogate single-layer network is trained on oracle query data with
// the joint loss of Eq. (9),
//
//	L = L_out + λ·L_power,
//
// where L_out is the MSE between surrogate and oracle outputs (or one-hot
// oracle labels in label-only mode) and L_power is the MSE between the
// oracle's measured power and the surrogate's differentiable power
// prediction p̂(u) = Σ_j u_j Σ_i |ŵ_ij|. Under the paper's normalized-
// crossbar convention (§II-B) the measured power equals exactly this
// feature evaluated on the oracle's weights, so no calibration parameter
// is needed and the column-1-norm structure of Eq. (5)/(6) transfers
// directly into the surrogate's weight magnitudes.
//
// The package also provides the algebraic extraction baseline the paper
// notes in Section IV: with Q >= N raw-output queries, W = (U†Ŷ)ᵀ exactly
// and power information is useless.
package surrogate

import (
	"errors"
	"fmt"

	"xbarsec/internal/linalg"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Config controls surrogate training.
type Config struct {
	// Lambda is the power loss weight λ of Eq. (9); 0 disables the power
	// term (the paper sweeps {0, 0.002, ..., 0.01}).
	Lambda float64
	// Epochs is the number of passes over the query set.
	Epochs int
	// BatchSize is the mini-batch size; <= 0 defaults to 32.
	BatchSize int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient in [0, 1).
	Momentum float64
}

// DefaultConfig returns the training settings used by the experiments.
func DefaultConfig() Config {
	return Config{Lambda: 0, Epochs: 40, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9}
}

// Model is a trained surrogate. Net is a linear+MSE network (the paper
// uses only linear surrogates).
type Model struct {
	// Net is the surrogate network; it implements attack.GradientSource.
	Net *nn.Network
}

// PredictPower returns the surrogate's power prediction in normalized
// (weight-unit) form, p̂(u) = Σ_j u_j Σ_i |ŵ_ij| — the differentiable
// model of Eq. (5)/(6) under the paper's normalized-crossbar convention.
func (m *Model) PredictPower(u []float64) float64 {
	return tensor.Dot(u, m.Net.W.ColAbsSums())
}

// Train fits a surrogate to the query set. The power term is active only
// when cfg.Lambda > 0 and qs.P is present.
func Train(qs *oracle.QuerySet, cfg Config, src *rng.Source) (*Model, error) {
	if qs == nil || qs.Len() == 0 {
		return nil, errors.New("surrogate: empty query set")
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("surrogate: epochs %d must be positive", cfg.Epochs)
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("surrogate: learning rate %v must be positive", cfg.LearningRate)
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, fmt.Errorf("surrogate: momentum %v out of [0,1)", cfg.Momentum)
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("surrogate: negative power weight %v", cfg.Lambda)
	}
	usePower := cfg.Lambda > 0 && qs.P != nil
	if cfg.Lambda > 0 && qs.P == nil {
		return nil, errors.New("surrogate: lambda > 0 but query set has no power data")
	}

	q, n, m := qs.Len(), qs.U.Cols(), qs.Y.Cols()
	net, err := nn.NewNetwork(m, n, nn.ActLinear, nn.LossMSE)
	if err != nil {
		return nil, err
	}
	net.InitXavier(src.Split("init"))

	// The power targets are expected in the paper's normalized
	// (weight-unit) convention — oracle.Collect delivers them that way —
	// so the surrogate's feature Σ_j u_j ‖Ŵ_:,j‖₁ is directly comparable
	// and Eq. (9) needs no calibration parameter.

	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	sgd := src.Split("sgd")
	velocity := tensor.New(m, n)
	grad := tensor.New(m, n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := sgd.Perm(q)
		for start := 0; start < q; start += batch {
			end := start + batch
			if end > q {
				end = q
			}
			grad.Fill(0)
			var colNorms []float64
			if usePower {
				colNorms = net.W.ColAbsSums()
			}
			for _, idx := range perm[start:end] {
				u := qs.U.Row(idx)
				y := qs.Y.Row(idx)
				// Output MSE term: δ = 2(Wu - y)/M.
				s := net.W.MatVec(u)
				for i := range s {
					d := 2 * (s[i] - y[i]) / float64(m)
					if d == 0 {
						continue
					}
					row := grad.Row(i)
					for j, uj := range u {
						row[j] += d * uj
					}
				}
				if usePower {
					// Power term: e = p̂(u) - p, p̂(u) = Σ_j u_j ‖W_:,j‖₁;
					// ∂p̂/∂w_ij = u_j·sign(w_ij).
					e := tensor.Dot(u, colNorms) - qs.P[idx]
					coeff := cfg.Lambda * 2 * e
					for i := 0; i < m; i++ {
						wrow := net.W.Row(i)
						grow := grad.Row(i)
						for j, uj := range u {
							if uj == 0 {
								continue
							}
							switch {
							case wrow[j] > 0:
								grow[j] += coeff * uj
							case wrow[j] < 0:
								grow[j] -= coeff * uj
							}
						}
					}
				}
			}
			scale := 1 / float64(end-start)
			velocity.Scale(cfg.Momentum)
			velocity.AddScaled(-cfg.LearningRate*scale, grad)
			net.W.AddMatrix(velocity)
		}
	}
	return &Model{Net: net}, nil
}

// AlgebraicExtract recovers the oracle's weights from raw-output queries
// by least squares: W = (U†Ŷ)ᵀ. With Q >= N independent queries on a
// noiseless linear oracle the recovery is exact (paper §IV); with fewer
// queries it returns the minimum-norm solution.
func AlgebraicExtract(qs *oracle.QuerySet) (*nn.Network, error) {
	if qs == nil || qs.Len() == 0 {
		return nil, errors.New("surrogate: empty query set")
	}
	uinv, err := linalg.PseudoInverse(qs.U)
	if err != nil {
		return nil, fmt.Errorf("surrogate: pseudoinverse: %w", err)
	}
	west := uinv.MatMul(qs.Y).T()
	net, err := nn.NewNetwork(west.Rows(), west.Cols(), nn.ActLinear, nn.LossMSE)
	if err != nil {
		return nil, err
	}
	net.W = west
	return net, nil
}

// Accuracy evaluates the surrogate's top-1 accuracy against true labels.
func (m *Model) Accuracy(x *tensor.Matrix, labels []int) float64 {
	if x.Rows() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		if m.Net.Predict(x.Row(i)) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows())
}
