// Package surrogate implements the paper's Section IV black-box attack:
// a surrogate single-layer network is trained on oracle query data with
// the joint loss of Eq. (9),
//
//	L = L_out + λ·L_power,
//
// where L_out is the MSE between surrogate and oracle outputs (or one-hot
// oracle labels in label-only mode) and L_power is the MSE between the
// oracle's measured power and the surrogate's differentiable power
// prediction p̂(u) = Σ_j u_j Σ_i |ŵ_ij|. Under the paper's normalized-
// crossbar convention (§II-B) the measured power equals exactly this
// feature evaluated on the oracle's weights, so no calibration parameter
// is needed and the column-1-norm structure of Eq. (5)/(6) transfers
// directly into the surrogate's weight magnitudes.
//
// The package also provides the algebraic extraction baseline the paper
// notes in Section IV: with Q >= N raw-output queries, W = (U†Ŷ)ᵀ exactly
// and power information is useless.
package surrogate

import (
	"errors"
	"fmt"

	"xbarsec/internal/linalg"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// Config controls surrogate training.
type Config struct {
	// Lambda is the power loss weight λ of Eq. (9); 0 disables the power
	// term (the paper sweeps {0, 0.002, ..., 0.01}).
	Lambda float64
	// Epochs is the number of passes over the query set.
	Epochs int
	// BatchSize is the mini-batch size; <= 0 defaults to 32.
	BatchSize int
	// LearningRate is the SGD step size.
	LearningRate float64
	// Momentum is the classical momentum coefficient in [0, 1).
	Momentum float64
}

// DefaultConfig returns the training settings used by the experiments.
func DefaultConfig() Config {
	return Config{Lambda: 0, Epochs: 40, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9}
}

// Model is a trained surrogate. Net is a linear+MSE network (the paper
// uses only linear surrogates).
type Model struct {
	// Net is the surrogate network; it implements attack.GradientSource.
	Net *nn.Network
}

// PredictPower returns the surrogate's power prediction in normalized
// (weight-unit) form, p̂(u) = Σ_j u_j Σ_i |ŵ_ij| — the differentiable
// model of Eq. (5)/(6) under the paper's normalized-crossbar convention.
func (m *Model) PredictPower(u []float64) float64 {
	return tensor.Dot(u, m.Net.W.ColAbsSums())
}

// Train fits a surrogate to the query set. The power term is active only
// when cfg.Lambda > 0 and qs.P is present.
func Train(qs *oracle.QuerySet, cfg Config, src *rng.Source) (*Model, error) {
	if qs == nil || qs.Len() == 0 {
		return nil, errors.New("surrogate: empty query set")
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("surrogate: epochs %d must be positive", cfg.Epochs)
	}
	if cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("surrogate: learning rate %v must be positive", cfg.LearningRate)
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, fmt.Errorf("surrogate: momentum %v out of [0,1)", cfg.Momentum)
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("surrogate: negative power weight %v", cfg.Lambda)
	}
	usePower := cfg.Lambda > 0 && qs.P != nil
	if cfg.Lambda > 0 && qs.P == nil {
		return nil, errors.New("surrogate: lambda > 0 but query set has no power data")
	}

	q, n, m := qs.Len(), qs.U.Cols(), qs.Y.Cols()
	net, err := nn.NewNetwork(m, n, nn.ActLinear, nn.LossMSE)
	if err != nil {
		return nil, err
	}
	net.InitXavier(src.Split("init"))

	// The power targets are expected in the paper's normalized
	// (weight-unit) convention — oracle.Collect delivers them that way —
	// so the surrogate's feature Σ_j u_j ‖Ŵ_:,j‖₁ is directly comparable
	// and Eq. (9) needs no calibration parameter.

	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 32
	}
	sgd := src.Split("sgd")
	velocity := tensor.New(m, n)
	grad := tensor.New(m, n)
	ws := newTrainWorkspace(batch, q, n, m, usePower)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := sgd.Perm(q)
		for start := 0; start < q; start += batch {
			end := start + batch
			if end > q {
				end = q
			}
			ws.step(net, qs, cfg, perm[start:end], ws.views(end-start), grad, usePower)
			scale := 1 / float64(end-start)
			tensor.SGDMomentumStep(net.W, velocity, grad, cfg.Momentum, -cfg.LearningRate*scale, false, 0)
		}
	}
	return &Model{Net: net}, nil
}

// trainViews is one set of mini-batch workspaces: gathered query inputs u
// and oracle outputs y, pre-activations s, and output-MSE deltas d.
type trainViews struct {
	rows       int
	u, y, s, d *tensor.Matrix
}

// trainWorkspace owns the reusable surrogate-training buffers. As in nn,
// an epoch sees at most two mini-batch sizes, so both view sets alias one
// allocation and the steady-state step allocates nothing. The power-term
// buffers (current column 1-norms, per-sample coeff·u products, and the
// sign matrix of W) are only present when the power loss is active.
type trainWorkspace struct {
	full, rem trainViews
	colNorms  []float64      // ‖W_:,j‖₁, refreshed per mini-batch
	cu        []float64      // coeff · u for the current sample
	sgn       *tensor.Matrix // sign(w_ij), refreshed per mini-batch
}

func newTrainWorkspace(batch, total, n, m int, usePower bool) *trainWorkspace {
	if batch > total {
		batch = total
	}
	full := trainViews{
		rows: batch,
		u:    tensor.New(batch, n),
		y:    tensor.New(batch, m),
		s:    tensor.New(batch, m),
		d:    tensor.New(batch, m),
	}
	ws := &trainWorkspace{full: full}
	if rem := total % batch; rem != 0 {
		ws.rem = trainViews{
			rows: rem,
			u:    full.u.RowSpan(0, rem),
			y:    full.y.RowSpan(0, rem),
			s:    full.s.RowSpan(0, rem),
			d:    full.d.RowSpan(0, rem),
		}
	}
	if usePower {
		ws.colNorms = make([]float64, n)
		ws.cu = make([]float64, n)
		ws.sgn = tensor.New(m, n)
	}
	return ws
}

func (w *trainWorkspace) views(rows int) *trainViews {
	if rows == w.full.rows {
		return &w.full
	}
	if rows == w.rem.rows {
		return &w.rem
	}
	panic(fmt.Sprintf("surrogate: no workspace for batch of %d rows", rows))
}

// step computes the summed mini-batch gradient of Eq. (9) into grad
// (overwritten). The forward pass runs as one matrix-matrix product for
// the whole mini-batch. Without the power term the gradient is a single
// batch contraction (GemmTA). With it, each sample contributes two
// updates to every gradient element — the output-MSE term, then the
// power term — and the original loop applied them per sample in exactly
// that order, so the power path keeps a per-sample accumulation (the
// batched forward still applies); it is restructured branch-free: the
// sign tests on w_ij move into a per-mini-batch sign matrix and the
// per-element coeff·u_j product is hoisted to one vector per sample.
// Multiplying by a ±1 sign and adding (rather than branching on +=/-=)
// and adding a ±0 term where the old loop skipped are both bit-neutral,
// so results stay bit-identical to the per-sample reference loop (pinned
// by TestTrainMatchesPerSampleReference in this package).
func (w *trainWorkspace) step(net *nn.Network, qs *oracle.QuerySet, cfg Config, idxs []int, v *trainViews, grad *tensor.Matrix, usePower bool) {
	m := net.Outputs()
	for bi, idx := range idxs {
		v.u.CopyRow(bi, qs.U, idx)
		v.y.CopyRow(bi, qs.Y, idx)
	}
	tensor.GemmTB(v.s, v.u, net.W)
	fm := float64(m)
	for bi := range idxs {
		s, y, d := v.s.Row(bi), v.y.Row(bi), v.d.Row(bi)
		// Output MSE term: δ = 2(Wu - y)/M.
		for i := range s {
			d[i] = 2 * (s[i] - y[i]) / fm
		}
	}
	if !usePower {
		tensor.GemmTA(grad, v.d, v.u)
		return
	}
	grad.Fill(0)
	net.W.ColAbsSumsInto(w.colNorms)
	sgnData, wData := w.sgn.Data(), net.W.Data()
	for k, wk := range wData {
		switch {
		case wk > 0:
			sgnData[k] = 1
		case wk < 0:
			sgnData[k] = -1
		default:
			sgnData[k] = 0
		}
	}
	for bi, idx := range idxs {
		u := v.u.Row(bi)
		d := v.d.Row(bi)
		for i, di := range d {
			if di == 0 {
				continue
			}
			row := grad.Row(i)
			for j, uj := range u {
				row[j] += di * uj
			}
		}
		// Power term: e = p̂(u) - p, p̂(u) = Σ_j u_j ‖W_:,j‖₁;
		// ∂p̂/∂w_ij = u_j·sign(w_ij).
		e := tensor.Dot(u, w.colNorms) - qs.P[idx]
		coeff := cfg.Lambda * 2 * e
		for j, uj := range u {
			w.cu[j] = coeff * uj
		}
		for i := 0; i < m; i++ {
			srow := w.sgn.Row(i)
			grow := grad.Row(i)
			for j, cj := range w.cu {
				grow[j] += srow[j] * cj
			}
		}
	}
}

// AlgebraicExtract recovers the oracle's weights from raw-output queries
// by least squares: W = (U†Ŷ)ᵀ. With Q >= N independent queries on a
// noiseless linear oracle the recovery is exact (paper §IV); with fewer
// queries it returns the minimum-norm solution.
func AlgebraicExtract(qs *oracle.QuerySet) (*nn.Network, error) {
	if qs == nil || qs.Len() == 0 {
		return nil, errors.New("surrogate: empty query set")
	}
	uinv, err := linalg.PseudoInverse(qs.U)
	if err != nil {
		return nil, fmt.Errorf("surrogate: pseudoinverse: %w", err)
	}
	west := uinv.MatMul(qs.Y).T()
	net, err := nn.NewNetwork(west.Rows(), west.Cols(), nn.ActLinear, nn.LossMSE)
	if err != nil {
		return nil, err
	}
	net.W = west
	return net, nil
}

// Accuracy evaluates the surrogate's top-1 accuracy against true labels
// through the batched forward path (bit-identical to per-sample Predict).
func (m *Model) Accuracy(x *tensor.Matrix, labels []int) float64 {
	if x.Rows() == 0 {
		return 0
	}
	preds, err := m.Net.PredictBatch(x)
	if err != nil {
		// Shape mismatch between surrogate and evaluation set — mirror the
		// per-sample path, which would have panicked inside MatVec.
		panic(err)
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows())
}
