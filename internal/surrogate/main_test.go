package surrogate

import (
	"testing"

	"xbarsec/internal/tensor/tensortest"
)

// TestMain routes through tensortest so the suite can run under the fast
// tensor backend (-tensor.fast, the `make test-fast` CI leg).
func TestMain(m *testing.M) { tensortest.Main(m) }
