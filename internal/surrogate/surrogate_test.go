package surrogate

import (
	"testing"
	"xbarsec/internal/stats"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

// testbed builds a trained oracle on a small synthetic digit task.
type testbed struct {
	oracle *oracle.Oracle
	victim *nn.Network
	train  *dataset.Dataset
	test   *dataset.Dataset
}

func newTestbed(t *testing.T, seed int64, mode oracle.Mode) *testbed {
	t.Helper()
	src := rng.New(seed)
	cfg := dataset.MNISTLikeConfig{Size: 10, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.02}
	train, err := dataset.GenerateMNISTLike(src.Split("train"), 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.GenerateMNISTLike(src.Split("test"), 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 15, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9,
	}, src.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	dcfg := crossbar.DefaultDeviceConfig()
	dcfg.GOff = 0
	hw, err := crossbar.NewNetwork(victim, dcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.New(hw, oracle.Config{Mode: mode, MeasurePower: true})
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{oracle: o, victim: victim, train: train, test: test}
}

func TestTrainValidation(t *testing.T) {
	tb := newTestbed(t, 1, oracle.RawOutput)
	qs, err := oracle.Collect(tb.oracle, tb.train, 20, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero epochs", Config{Epochs: 0, LearningRate: 0.1}},
		{"zero lr", Config{Epochs: 1}},
		{"bad momentum", Config{Epochs: 1, LearningRate: 0.1, Momentum: 1}},
		{"negative lambda", Config{Epochs: 1, LearningRate: 0.1, Lambda: -0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Train(qs, tt.cfg, rng.New(2)); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
	if _, err := Train(nil, DefaultConfig(), rng.New(2)); err == nil {
		t.Fatal("nil query set must error")
	}
	noPower := &oracle.QuerySet{U: qs.U, Y: qs.Y, Labels: qs.Labels}
	cfg := DefaultConfig()
	cfg.Lambda = 0.01
	if _, err := Train(noPower, cfg, rng.New(2)); err == nil {
		t.Fatal("lambda > 0 without power data must error")
	}
}

func TestSurrogateLearnsFromRawQueries(t *testing.T) {
	tb := newTestbed(t, 2, oracle.RawOutput)
	qs, err := oracle.Collect(tb.oracle, tb.train, 200, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	model, err := Train(qs, cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	acc := model.Accuracy(tb.test.X, tb.test.Labels)
	if acc < 0.5 {
		t.Fatalf("surrogate accuracy %v too low after 200 raw queries", acc)
	}
}

func TestMoreQueriesHelp(t *testing.T) {
	tb := newTestbed(t, 3, oracle.RawOutput)
	accs := make([]float64, 0, 2)
	for _, q := range []int{20, 250} {
		tb.oracle.ResetQueries()
		qs, err := oracle.Collect(tb.oracle, tb.train, q, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		model, err := Train(qs, DefaultConfig(), rng.New(6))
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, model.Accuracy(tb.test.X, tb.test.Labels))
	}
	if accs[1] <= accs[0] {
		t.Fatalf("more queries should improve the surrogate: %v", accs)
	}
}

func TestPowerTermImprovesLowQuerySurrogate(t *testing.T) {
	// The paper's central Case-2 claim: at moderate query budgets, adding
	// the power loss improves the surrogate. Averaged over several seeds
	// to avoid flakiness.
	var gains float64
	const seeds = 3
	for s := int64(0); s < seeds; s++ {
		tb := newTestbed(t, 10+s, oracle.RawOutput)
		qs, err := oracle.Collect(tb.oracle, tb.train, 40, rng.New(20+s))
		if err != nil {
			t.Fatal(err)
		}
		base := DefaultConfig()
		noPower, err := Train(qs, base, rng.New(30+s))
		if err != nil {
			t.Fatal(err)
		}
		base.Lambda = 0.01
		withPower, err := Train(qs, base, rng.New(30+s))
		if err != nil {
			t.Fatal(err)
		}
		gains += withPower.Accuracy(tb.test.X, tb.test.Labels) - noPower.Accuracy(tb.test.X, tb.test.Labels)
	}
	if gains/seeds < -0.02 {
		t.Fatalf("power term hurt accuracy on average: mean gain %v", gains/seeds)
	}
}

func TestPowerPredictionTracksOracle(t *testing.T) {
	tb := newTestbed(t, 4, oracle.RawOutput)
	qs, err := oracle.Collect(tb.oracle, tb.train, 150, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Lambda = 0.01
	model, err := Train(qs, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// Predicted power should correlate with measured power on the
	// training queries.
	pred := make([]float64, qs.Len())
	meas := make([]float64, qs.Len())
	for i := 0; i < qs.Len(); i++ {
		pred[i] = model.PredictPower(qs.U.Row(i))
		meas[i] = qs.P[i]
	}
	corr, err := stats.Pearson(pred, meas)
	if err != nil {
		t.Skipf("degenerate power variance: %v", err)
	}
	if corr < 0.5 {
		t.Fatalf("power prediction correlation %v too low", corr)
	}
	// And the absolute power scale should roughly match (normalized
	// units make them directly comparable).
	ratio := stats.Mean(pred) / stats.Mean(meas)
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("power scale ratio %v far from 1", ratio)
	}
}

func TestAlgebraicExtractExactRecovery(t *testing.T) {
	tb := newTestbed(t, 5, oracle.RawOutput)
	n := tb.victim.Inputs()
	qs, err := oracle.Collect(tb.oracle, tb.train, n+30, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if qs.Len() < n {
		t.Skipf("not enough training samples (%d) for exact recovery of %d dims", qs.Len(), n)
	}
	net, err := AlgebraicExtract(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !net.W.Equal(tb.victim.W, 1e-6) {
		diff := net.W.Clone()
		diff.SubMatrix(tb.victim.W)
		t.Fatalf("W = U†Ŷ recovery failed, max error %v", diff.MaxAbs())
	}
}

func TestAlgebraicExtractValidation(t *testing.T) {
	if _, err := AlgebraicExtract(nil); err == nil {
		t.Fatal("nil query set must error")
	}
	if _, err := AlgebraicExtract(&oracle.QuerySet{U: tensor.New(0, 3), Y: tensor.New(0, 2)}); err == nil {
		t.Fatal("empty query set must error")
	}
}

func TestLabelOnlyTrainingStillLearns(t *testing.T) {
	tb := newTestbed(t, 6, oracle.LabelOnly)
	qs, err := oracle.Collect(tb.oracle, tb.train, 250, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	model, err := Train(qs, DefaultConfig(), rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	acc := model.Accuracy(tb.test.X, tb.test.Labels)
	if acc < 0.4 {
		t.Fatalf("label-only surrogate accuracy %v too low", acc)
	}
}

func TestTrainDeterminism(t *testing.T) {
	tb := newTestbed(t, 7, oracle.RawOutput)
	qs, err := oracle.Collect(tb.oracle, tb.train, 60, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Lambda = 0.004
	a, err := Train(qs, cfg, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(qs, cfg, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Net.W.Equal(b.Net.W, 0) {
		t.Fatal("surrogate training must be deterministic per seed")
	}
}
