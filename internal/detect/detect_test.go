package detect

import (
	"testing"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/tensor"
)

func testbed(t *testing.T, seed int64) (*crossbar.Network, *nn.Network, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	src := rng.New(seed)
	cfg := dataset.MNISTLikeConfig{Size: 12, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.03}
	calib, err := dataset.GenerateMNISTLike(src.Split("calib"), 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.GenerateMNISTLike(src.Split("test"), 120, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim, _, err := nn.TrainNew(calib, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 20, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true,
	}, src.Split("train"))
	if err != nil {
		t.Fatal(err)
	}
	hw, err := crossbar.NewNetwork(victim, crossbar.DefaultDeviceConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return hw, victim, calib, test
}

func TestFitValidation(t *testing.T) {
	hw, _, calib, _ := testbed(t, 1)
	if _, err := Fit(nil, calib, Config{}); err == nil {
		t.Fatal("nil hardware must error")
	}
	if _, err := Fit(hw, nil, Config{}); err == nil {
		t.Fatal("nil calibration must error")
	}
	if _, err := Fit(hw, calib, Config{Threshold: -1}); err == nil {
		t.Fatal("negative threshold must error")
	}
	if _, err := Fit(hw, calib, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreAndFlagBounds(t *testing.T) {
	hw, _, calib, _ := testbed(t, 2)
	d, err := Fit(hw, calib, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Score(1, -1); err == nil {
		t.Fatal("negative class must error")
	}
	if _, err := d.Flag(1, 99); err == nil {
		t.Fatal("class out of range must error")
	}
}

func TestCleanInputsMostlyPass(t *testing.T) {
	hw, _, calib, test := testbed(t, 3)
	d, err := Fit(hw, calib, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(d, hw, test, func(_ int, u []float64) []float64 { return u })
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositiveRate > 0.15 {
		t.Fatalf("clean false positive rate %v too high", res.FalsePositiveRate)
	}
	// Identity perturbation ⇒ detection rate equals the FPR.
	if res.DetectionRate != res.FalsePositiveRate {
		t.Fatalf("identity perturbation: %v != %v", res.DetectionRate, res.FalsePositiveRate)
	}
}

func TestDetectsStrongFGSM(t *testing.T) {
	hw, victim, calib, test := testbed(t, 4)
	d, err := Fit(hw, calib, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	oh := test.OneHot()
	res, err := Evaluate(d, hw, test, func(i int, u []float64) []float64 {
		adv, err := attack.FGSM(victim, u, oh.Row(i), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return adv
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectionRate < 0.5 {
		t.Fatalf("strong FGSM detection rate %v too low (fpr %v)", res.DetectionRate, res.FalsePositiveRate)
	}
	if res.DetectionRate <= res.FalsePositiveRate {
		t.Fatalf("detector must beat its false positive rate: %v vs %v", res.DetectionRate, res.FalsePositiveRate)
	}
}

func TestWeakPerturbationsHarderToDetect(t *testing.T) {
	hw, victim, calib, test := testbed(t, 5)
	d, err := Fit(hw, calib, Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	oh := test.OneHot()
	rate := func(eps float64) float64 {
		res, err := Evaluate(d, hw, test, func(i int, u []float64) []float64 {
			adv, err := attack.FGSM(victim, u, oh.Row(i), eps)
			if err != nil {
				t.Fatal(err)
			}
			return adv
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.DetectionRate
	}
	weak, strong := rate(0.02), rate(0.5)
	if weak > strong {
		t.Fatalf("weaker attacks should be harder to detect: %v vs %v", weak, strong)
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	hw, _, calib, _ := testbed(t, 6)
	d, err := Fit(hw, calib, Config{})
	if err != nil {
		t.Fatal(err)
	}
	empty := &dataset.Dataset{X: tensor.New(0, calib.Dim()), NumClasses: 10, Width: calib.Width, Height: calib.Height, Channels: 1}
	if _, err := Evaluate(d, hw, empty, func(_ int, u []float64) []float64 { return u }); err == nil {
		t.Fatal("empty dataset must error")
	}
}
