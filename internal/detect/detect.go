// Package detect implements a current-signature adversarial-input
// detector in the spirit of DetectX (Moitra & Panda, TCAS-I 2021), which
// the paper cites as the defensive counterpart of its attack: the same
// supply current that leaks the weight's column norms also carries a
// signature of the *input*, and adversarial perturbations — which add
// pixel mass indiscriminately — shift that signature away from the clean
// per-class distribution. The detector fits per-class power statistics on
// clean data and flags inferences whose measured power is a statistical
// outlier for the predicted class.
package detect

import (
	"errors"
	"fmt"
	"math"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/stats"
)

// Detector holds per-class clean power statistics.
type Detector struct {
	mean      []float64
	std       []float64
	threshold float64
	classes   int
}

// Config controls detector fitting.
type Config struct {
	// Threshold is the |z|-score above which an inference is flagged
	// (default 3).
	Threshold float64
}

// Fit builds a detector from the deployed network and a clean calibration
// set: for every calibration sample it records (predicted class, power)
// and estimates the per-class power mean and standard deviation.
func Fit(hw *crossbar.Network, calib *dataset.Dataset, cfg Config) (*Detector, error) {
	if hw == nil {
		return nil, errors.New("detect: nil hardware network")
	}
	if calib == nil || calib.Len() == 0 {
		return nil, fmt.Errorf("detect: empty calibration set: %w", dataset.ErrEmpty)
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 3
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("detect: negative threshold %v", cfg.Threshold)
	}
	classes := hw.Outputs()
	powers := make([][]float64, classes)
	for i := 0; i < calib.Len(); i++ {
		u := calib.X.Row(i)
		label, err := hw.Predict(u)
		if err != nil {
			return nil, err
		}
		p, err := hw.Power(u)
		if err != nil {
			return nil, err
		}
		powers[label] = append(powers[label], p)
	}
	d := &Detector{
		mean:      make([]float64, classes),
		std:       make([]float64, classes),
		threshold: cfg.Threshold,
		classes:   classes,
	}
	// Pool all classes for a fallback when a class has too few samples.
	var all []float64
	for _, ps := range powers {
		all = append(all, ps...)
	}
	if len(all) < 2 {
		return nil, fmt.Errorf("detect: calibration produced %d power samples: %w", len(all), dataset.ErrEmpty)
	}
	pooledMean := stats.Mean(all)
	pooledStd := stats.StdDev(all)
	if pooledStd == 0 {
		return nil, errors.New("detect: calibration powers are constant")
	}
	for c := 0; c < classes; c++ {
		if len(powers[c]) >= 5 {
			d.mean[c] = stats.Mean(powers[c])
			d.std[c] = stats.StdDev(powers[c])
			if d.std[c] == 0 {
				d.std[c] = pooledStd
			}
		} else {
			d.mean[c] = pooledMean
			d.std[c] = pooledStd
		}
	}
	return d, nil
}

// Score returns the |z|-score of a measured power under the predicted
// class's clean distribution.
func (d *Detector) Score(power float64, predictedClass int) (float64, error) {
	if predictedClass < 0 || predictedClass >= d.classes {
		return 0, fmt.Errorf("detect: class %d out of range", predictedClass)
	}
	return math.Abs(power-d.mean[predictedClass]) / d.std[predictedClass], nil
}

// Flag reports whether an inference with the given measured power and
// predicted class should be treated as adversarial.
func (d *Detector) Flag(power float64, predictedClass int) (bool, error) {
	z, err := d.Score(power, predictedClass)
	if err != nil {
		return false, err
	}
	return z > d.threshold, nil
}

// EvalResult summarizes detector performance.
type EvalResult struct {
	// FalsePositiveRate is the fraction of clean inputs flagged.
	FalsePositiveRate float64
	// DetectionRate is the fraction of adversarial inputs flagged.
	DetectionRate float64
}

// Evaluate measures the false-positive rate on clean and the detection
// rate on perturbed inputs. perturb maps (index, clean input copy) to the
// adversarial input.
func Evaluate(d *Detector, hw *crossbar.Network, ds *dataset.Dataset, perturb func(i int, u []float64) []float64) (EvalResult, error) {
	if ds.Len() == 0 {
		return EvalResult{}, dataset.ErrEmpty
	}
	var fp, tp int
	for i := 0; i < ds.Len(); i++ {
		clean := ds.X.Row(i)
		if flagged, err := flagInput(d, hw, clean); err != nil {
			return EvalResult{}, err
		} else if flagged {
			fp++
		}
		adv := perturb(i, append([]float64(nil), clean...))
		if flagged, err := flagInput(d, hw, adv); err != nil {
			return EvalResult{}, err
		} else if flagged {
			tp++
		}
	}
	n := float64(ds.Len())
	return EvalResult{
		FalsePositiveRate: float64(fp) / n,
		DetectionRate:     float64(tp) / n,
	}, nil
}

func flagInput(d *Detector, hw *crossbar.Network, u []float64) (bool, error) {
	label, err := hw.Predict(u)
	if err != nil {
		return false, err
	}
	p, err := hw.Power(u)
	if err != nil {
		return false, err
	}
	return d.Flag(p, label)
}
