// Package xbarsec reproduces "Enhancing Adversarial Attacks on
// Single-Layer NVM Crossbar-Based Neural Networks with Power Consumption
// Information" (Cory Merkel, SOCC 2022; arXiv:2207.02764) as a
// stdlib-only Go library.
//
// The implementation lives under internal/: a dense tensor kernel, a
// numerical linear algebra package, synthetic MNIST/CIFAR-like dataset
// generators (plus parsers for the real formats), single-layer neural
// network training, an NVM crossbar simulator with a power model and
// first-order non-idealities, the attacker's power probe and 1-norm
// extraction, evasion attacks, the power-augmented surrogate trainer, and
// one declarative grid spec per table/figure of the paper on the
// deterministic grid engine (internal/experiment/engine), registered in
// a name→spec registry that the CLI, the service layer and the HTTP API
// all dispatch through.
//
// Entry points:
//
//   - api/           — the PUBLIC versioned wire protocol: every HTTP
//     request/response type, the typed {code, message, detail} error
//     envelope, and the protocol version constants
//   - client/        — the PUBLIC Go SDK (client.New(baseURL)): typed
//     access to every endpoint, batched queries (QueryBatch: N oracle
//     queries in one round trip), experiment launch/poll, and a
//     major-version handshake
//   - cmd/xbarattack — CLI that runs any registered experiment by name
//     (-format table|csv|json; the -workers flag bounds concurrency;
//     0 = all CPUs, 1 = serial), plus a `campaign` sweep served through
//     internal/service; -server URL runs remotely through the SDK
//   - cmd/xbarserve  — HTTP front end for the concurrent attack-campaign
//     service (internal/service): multi-tenant victim registry, budgeted
//     attacker sessions (idle-TTL eviction, per-victim caps), coalesced
//     batched serving, cached campaign jobs, and server-side experiment
//     jobs (/v2/experiments); -smoke self-checks through the SDK
//   - examples/      — runnable walkthroughs of the public workflow
//   - bench_test.go  — one benchmark per table/figure plus victim-store
//     and kernel microbenchmarks, serial and parallel
//
// The evaluation engine is batched and concurrent, and both axes are
// deterministic: batched crossbar calls (internal/crossbar's
// OutputBatch, TotalCurrentBatch, PowerBatch, ForwardBatch,
// PredictBatch) are bit-identical to sequential scalar calls, and the
// grid engine fans cells across internal/pool workers with every cell's
// randomness derived from Options.Seed via rng.Source.Split/SplitN
// keyed by the cell's identity — so for a fixed seed the output is
// bit-identical at every worker count. Victims train at most once per
// (config, stream, scale) per process through a shared singleflight
// store.
//
// See DESIGN.md for the system inventory and concurrency model, README.md
// for usage, and EXPERIMENTS.md for paper-vs-measured comparisons.
package xbarsec
