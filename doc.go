// Package xbarsec reproduces "Enhancing Adversarial Attacks on
// Single-Layer NVM Crossbar-Based Neural Networks with Power Consumption
// Information" (Cory Merkel, SOCC 2022; arXiv:2207.02764) as a
// stdlib-only Go library.
//
// The implementation lives under internal/: a dense tensor kernel, a
// numerical linear algebra package, synthetic MNIST/CIFAR-like dataset
// generators (plus parsers for the real formats), single-layer neural
// network training, an NVM crossbar simulator with a power model and
// first-order non-idealities, the attacker's power probe and 1-norm
// extraction, evasion attacks, the power-augmented surrogate trainer, and
// one experiment runner per table/figure of the paper.
//
// Entry points:
//
//   - cmd/xbarattack — CLI that regenerates Table I and Figures 3-5
//   - examples/      — runnable walkthroughs of the public workflow
//   - bench_test.go  — one benchmark per table/figure plus kernel
//     microbenchmarks
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured comparisons.
package xbarsec
