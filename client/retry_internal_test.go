package client

// White-box retry tests: the decision taxonomy and the backoff
// schedule, pinned deterministically — no servers, no sleeps.

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"xbarsec/api"
)

func TestRetryDecisionTaxonomy(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		method string
		want   bool
		wantRA int
	}{
		// Typed transient envelopes prove the server refused before
		// executing: replayable for any method, hint passed through.
		{"unavailable POST", &api.Error{Code: api.CodeUnavailable, RetryAfter: 5}, http.MethodPost, true, 5},
		{"job_limit POST", &api.Error{Code: api.CodeJobLimit}, http.MethodPost, true, 0},
		{"session_limit POST", &api.Error{Code: api.CodeSessionLimit}, http.MethodPost, true, 0},
		{"service_closed POST", &api.Error{Code: api.CodeServiceClosed}, http.MethodPost, true, 0},
		{"victim_closed POST", &api.Error{Code: api.CodeVictimClosed}, http.MethodPost, true, 0},
		// Permanent typed refusals never retry.
		{"budget_exhausted GET", &api.Error{Code: api.CodeBudgetExhausted}, http.MethodGet, false, 0},
		{"bad_request POST", &api.Error{Code: api.CodeBadRequest}, http.MethodPost, false, 0},
		{"version_mismatch GET", &api.Error{Code: api.CodeVersionMismatch}, http.MethodGet, false, 0},
		// Non-envelope statuses: 429 is a refusal (safe for any method);
		// 5xx may have executed — idempotent reads only.
		{"bare 429 POST", &statusError{status: http.StatusTooManyRequests, e: &api.Error{Code: api.CodeInternal, RetryAfter: 2}}, http.MethodPost, true, 2},
		{"bare 500 GET", &statusError{status: http.StatusInternalServerError, e: &api.Error{Code: api.CodeInternal}}, http.MethodGet, true, 0},
		{"bare 500 POST", &statusError{status: http.StatusInternalServerError, e: &api.Error{Code: api.CodeInternal}}, http.MethodPost, false, 0},
		{"bare 404 GET", &statusError{status: http.StatusNotFound, e: &api.Error{Code: api.CodeInternal}}, http.MethodGet, false, 0},
		// Transport failures (no response at all): the request may have
		// executed — idempotent reads only.
		{"transport GET", errors.New("dial tcp: connection refused"), http.MethodGet, true, 0},
		{"transport POST", errors.New("dial tcp: connection refused"), http.MethodPost, false, 0},
	}
	for _, tc := range cases {
		got, ra := retryDecision(tc.err, tc.method)
		if got != tc.want || ra != tc.wantRA {
			t.Errorf("%s: retryDecision = (%v, %d), want (%v, %d)", tc.name, got, ra, tc.want, tc.wantRA)
		}
	}
}

func TestBackoffSchedule(t *testing.T) {
	r := newRetrier(RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 7})
	// A server Retry-After hint overrides the computed schedule.
	if d := r.backoff(0, 3); d != 3*time.Second {
		t.Fatalf("Retry-After backoff = %v, want 3s", d)
	}
	// Exponential with full jitter on the upper half: step k in
	// [base·2^k/2, base·2^k], capped at MaxDelay.
	for attempt := 0; attempt < 8; attempt++ {
		step := 100 * time.Millisecond << attempt
		if step <= 0 || step > time.Second {
			step = time.Second
		}
		for i := 0; i < 16; i++ {
			if d := r.backoff(attempt, 0); d < step/2 || d > step {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, step/2, step)
			}
		}
	}
	// Same seed, same schedule — the jitter stream is deterministic.
	a, b := newRetrier(RetryPolicy{Seed: 9}), newRetrier(RetryPolicy{Seed: 9})
	for i := 0; i < 32; i++ {
		if da, db := a.backoff(i%4, 0), b.backoff(i%4, 0); da != db {
			t.Fatalf("draw %d: seeded schedules diverge (%v vs %v)", i, da, db)
		}
	}
}
