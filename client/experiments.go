package client

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"xbarsec/api"
)

// Experiments lists the server's experiment registry with grid axes.
func (c *Client) Experiments(ctx context.Context) ([]api.ExperimentInfo, error) {
	var out []api.ExperimentInfo
	err := c.call(ctx, http.MethodGet, api.PathPrefix+"/experiments", nil, &out)
	return out, err
}

// LaunchExperiment starts an experiment job asynchronously and returns
// its poll handle (combine with WaitJob, or poll ExperimentJob).
func (c *Client) LaunchExperiment(ctx context.Context, spec api.ExperimentSpec) (api.Job, error) {
	var job api.Job
	err := c.call(ctx, http.MethodPost, api.PathPrefix+"/experiments", spec, &job)
	return job, err
}

// ExperimentJob polls one experiment job.
func (c *Client) ExperimentJob(ctx context.Context, id string) (api.Job, error) {
	var job api.Job
	err := c.call(ctx, http.MethodGet, api.PathPrefix+"/experiments/jobs/"+id, nil, &job)
	return job, err
}

// RunExperiment launches an experiment job and blocks (server-side,
// ?wait=1 — one round trip, no polling) until it finishes, returning
// its result. A failed job surfaces as an error. Long experiments are
// bounded only by ctx.
func (c *Client) RunExperiment(ctx context.Context, spec api.ExperimentSpec) (*api.ExperimentResult, error) {
	var job api.Job
	if err := c.call(ctx, http.MethodPost, api.PathPrefix+"/experiments?wait=1", spec, &job); err != nil {
		return nil, err
	}
	return jobResult(job)
}

// WaitJob polls an experiment job until it finishes (or ctx expires),
// returning the finished job. poll <= 0 selects 250ms. A failed job is
// returned alongside a non-nil error.
//
// The wait survives transient trouble: a 503 (restarting or overloaded
// server) or a transport hiccup keeps the poll loop alive instead of
// failing the wait — against a journaling server (xbarserve -data-dir)
// the job id remains valid across a bounce, so waiting through it is
// correct. Permanent refusals (unknown job, version mismatch) still
// fail immediately; ctx bounds how long the client is willing to ride
// out an outage.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (api.Job, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		job, err := c.ExperimentJob(ctx, id)
		if err != nil {
			if transient, _ := retryDecision(err, http.MethodGet); !transient || ctx.Err() != nil {
				return job, err
			}
			// Transient: fall through to the tick and poll again.
		} else if job.Status != api.JobRunning {
			if job.Status == api.JobFailed {
				return job, fmt.Errorf("client: experiment job %s failed: %s", job.ID, job.Error)
			}
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-ticker.C:
		}
	}
}

// jobResult extracts a finished job's result.
func jobResult(job api.Job) (*api.ExperimentResult, error) {
	switch job.Status {
	case api.JobDone:
		if job.Result == nil {
			return nil, fmt.Errorf("client: job %s done without a result", job.ID)
		}
		return job.Result, nil
	case api.JobFailed:
		return nil, fmt.Errorf("client: experiment job %s failed: %s", job.ID, job.Error)
	default:
		return nil, fmt.Errorf("client: job %s still %s", job.ID, job.Status)
	}
}
