package client_test

// Retry-policy tests: what the SDK replays, what it refuses to replay,
// and how WaitJob rides out a server bounce. The budget-charging query
// test runs against the real service stack with a fault-injecting
// transport — the charge counter is the proof that a dropped response
// never turns into a silent double spend.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xbarsec/api"
	"xbarsec/client"
	"xbarsec/internal/faultinject"
	"xbarsec/internal/service"
)

// versionOK answers the handshake for fake-server tests.
func versionOK(w http.ResponseWriter) {
	_ = json.NewEncoder(w).Encode(api.VersionInfo{Version: api.VersionString(), Major: api.Major})
}

// fastRetry keeps test backoff in the milliseconds.
func fastRetry() client.RetryPolicy {
	return client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1}
}

// TestWaitJobSurvivesTransient503 pins the restart-safe wait: a polling
// client must ride out a server bounce — both a typed "unavailable"
// envelope and a bare proxy-style 503 — and deliver the finished job
// once the server is back.
func TestWaitJobSurvivesTransient503(t *testing.T) {
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case api.PathPrefix + "/version":
			versionOK(w)
		case api.PathPrefix + "/experiments/jobs/job-1":
			switch polls.Add(1) {
			case 1:
				// A bare 503 (reverse proxy, no envelope).
				http.Error(w, "upstream restarting", http.StatusServiceUnavailable)
			case 2:
				// The server's own typed refusal.
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(&api.Error{Code: api.CodeUnavailable, Message: "journal full", RetryAfter: 1})
			default:
				_ = json.NewEncoder(w).Encode(api.Job{ID: "job-1", Status: api.JobDone, Result: &api.ExperimentResult{Name: "x"}})
			}
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	job, err := c.WaitJob(ctx, "job-1", time.Millisecond)
	if err != nil {
		t.Fatalf("wait through transient 503s: %v", err)
	}
	if job.Status != api.JobDone || polls.Load() < 3 {
		t.Fatalf("job = %+v after %d polls", job, polls.Load())
	}

	// A permanent refusal still fails immediately — no blind spinning on
	// an unknown job.
	var polls2 atomic.Int64
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == api.PathPrefix+"/version" {
			versionOK(w)
			return
		}
		polls2.Add(1)
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(&api.Error{Code: api.CodeUnknownJob, Message: "no such job"})
	}))
	defer srv2.Close()
	c2, err := client.New(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.WaitJob(ctx, "job-9", time.Millisecond); api.CodeOf(err) != api.CodeUnknownJob {
		t.Fatalf("unknown job wait = %v, want typed unknown_job", err)
	}
	if polls2.Load() != 1 {
		t.Fatalf("permanent refusal polled %d times, want 1", polls2.Load())
	}
}

// TestRetryReplaysTypedRefusals pins the safe half of the taxonomy: a
// typed transient envelope proves the server refused before executing,
// so even a POST is replayed — and the call succeeds once the server
// recovers.
func TestRetryReplaysTypedRefusals(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case api.PathPrefix + "/version":
			versionOK(w)
		case api.PathPrefix + "/campaigns":
			if hits.Add(1) <= 2 {
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(&api.Error{Code: api.CodeUnavailable, Message: "journal full"})
				return
			}
			_ = json.NewEncoder(w).Encode(api.CampaignResult{Victim: "toy", QueriesCharged: 5})
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c, err := client.New(srv.URL, client.WithRetry(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunCampaign(context.Background(), api.CampaignRequest{Victim: "toy", Mode: api.ModeLabelOnly, Queries: 5})
	if err != nil {
		t.Fatalf("campaign through typed refusals: %v", err)
	}
	if res.QueriesCharged != 5 || hits.Load() != 3 {
		t.Fatalf("result = %+v after %d attempts, want success on the third", res, hits.Load())
	}
}

// TestRetryNeverReplaysQueries is the charge-counting acceptance test:
// against the real service stack, a dropped response on a budget-
// charging query surfaces as an error after exactly one execution —
// the retry layer must not spend the session budget twice for one
// answer the client never saw.
func TestRetryNeverReplaysQueries(t *testing.T) {
	v := buildVictim(t, "toy", 17)
	svc := service.New(service.Config{Seed: 17, Workers: 2})
	if err := svc.Register(v); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	var queryHits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/query") {
			queryHits.Add(1)
		}
		svc.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	// Round trips through the faulted transport: 1 = version handshake,
	// 2 = open session, 3 = the query — executed server-side, response
	// dropped. FailAfter pins the schedule deterministically.
	tr := faultinject.NewTransport(nil, faultinject.TransportConfig{
		Seed:         5,
		RoundTrips:   faultinject.Plan{FailAfter: 2},
		DropResponse: true,
	})
	c, err := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithRetry(fastRetry()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "toy", Mode: api.ModeRawOutput, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, v.Test().X.Row(0)); err == nil {
		t.Fatal("dropped-response query must surface an error")
	}
	if got := queryHits.Load(); got != 1 {
		t.Fatalf("server executed the query %d times, want exactly 1 (no silent replay)", got)
	}
	if faults := tr.Faults(); faults != 1 {
		t.Fatalf("transport injected %d faults, want 1 — the query was re-sent", faults)
	}

	// The ground truth: the session was charged exactly once. A clean
	// client reads the accounting.
	c2, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c2.SessionByID(sess.ID()).Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Queries != 1 {
		t.Fatalf("session charged %d queries, want 1", info.Queries)
	}

	// Contrast: the same dropped-response failure on an idempotent read
	// is replayed and succeeds.
	tr2 := faultinject.NewTransport(nil, faultinject.TransportConfig{
		Seed:         5,
		RoundTrips:   faultinject.Plan{ErrorRate: 0.5},
		DropResponse: true,
	})
	c3, err := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr2}),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c3.Stats(ctx); err != nil {
			t.Fatalf("stats read %d not replayed through transport faults: %v", i, err)
		}
	}
	if tr2.Faults() == 0 {
		t.Fatal("fault schedule degenerate: no round trips were dropped")
	}
}
