package client

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"xbarsec/api"
)

// RetryPolicy configures automatic retry of transient failures
// (WithRetry). The policy is deliberately conservative about what it
// replays — see retryDecision: a request is only ever re-sent when the
// failure proves the server did not execute it, or when the request is
// an idempotent read. Budget-charging queries are never silently
// retried after a transport failure: the query may have executed and
// charged, and only the caller can decide whether to spend again.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts including the first (0 = 4).
	MaxAttempts int
	// BaseDelay is the first backoff step (0 = 100ms); step k waits
	// roughly BaseDelay·2^k, jittered, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step (0 = 5s). A server Retry-After
	// hint overrides the computed step, not the cap.
	MaxDelay time.Duration
	// PerTryTimeout bounds each attempt (0 = none; the caller's context
	// still bounds the whole call). A timed-out attempt counts as a
	// transport failure: replayed only for idempotent reads.
	PerTryTimeout time.Duration
	// Seed roots the jitter stream; 0 draws a random seed once at
	// client construction (tests pin it for reproducible schedules).
	Seed int64
}

// WithRetry enables automatic retry with the given policy.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = newRetrier(p) }
}

// retrier holds the resolved policy and its jitter stream.
type retrier struct {
	p RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

func newRetrier(p RetryPolicy) *retrier {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	seed := uint64(p.Seed)
	if p.Seed == 0 {
		// Decorrelate unseeded clients so a fleet retrying the same
		// outage doesn't thunder in lockstep. crypto/rand, not the wall
		// clock: the SDK stays free of ambient time reads.
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
	}
	return &retrier{p: p, rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// backoff computes the wait before attempt+2: the server's Retry-After
// hint when present (it knows its own recovery horizon), otherwise
// jittered exponential on the policy's schedule.
func (r *retrier) backoff(attempt, retryAfterSeconds int) time.Duration {
	if retryAfterSeconds > 0 {
		return time.Duration(retryAfterSeconds) * time.Second
	}
	d := r.p.BaseDelay << attempt
	if d <= 0 || d > r.p.MaxDelay {
		d = r.p.MaxDelay
	}
	// Full jitter on the upper half: [d/2, d).
	r.mu.Lock()
	j := d/2 + time.Duration(r.rng.Int64N(int64(d/2)+1))
	r.mu.Unlock()
	return j
}

// retryDecision classifies one failed request: may it be re-sent, and
// did the server hint a backoff? The taxonomy:
//
//   - A typed protocol envelope with a transient code (unavailable,
//     job/session limits, shutdown): the server received, refused and
//     did not execute the request — replaying is safe for ANY method,
//     including budget-charging queries, because refusal precedes any
//     charge.
//   - A non-envelope 429: same refusal semantics, status-only proof.
//   - A non-envelope 5xx or a transport failure (connection refused,
//     dropped response, per-attempt timeout): the request MAY have
//     executed server-side. Only idempotent reads (GET) are replayed;
//     a POST query could otherwise charge the session budget twice for
//     one answer.
func retryDecision(err error, method string) (retryable bool, retryAfterSeconds int) {
	var se *statusError
	if errors.As(err, &se) {
		ra := 0
		var ae *api.Error
		if errors.As(err, &ae) {
			ra = ae.RetryAfter
		}
		if se.status == http.StatusTooManyRequests {
			return true, ra
		}
		if se.status >= 500 {
			return method == http.MethodGet, ra
		}
		return false, 0
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		switch ae.Code {
		case api.CodeUnavailable, api.CodeJobLimit, api.CodeSessionLimit,
			api.CodeServiceClosed, api.CodeVictimClosed:
			return true, ae.RetryAfter
		}
		return false, 0
	}
	// No response decoded at all: transport-level failure.
	return method == http.MethodGet, 0
}

// doRetry is do under the client's retry policy (a plain single attempt
// when none is configured). All attempts go to one base; a redirect is
// not retryable here (421 with a sub-500 typed code) — the hop loop in
// callBase handles it.
func (c *Client) doRetry(ctx context.Context, base, method, path string, in, out any) error {
	r := c.retry
	if r == nil {
		return c.do(ctx, base, method, path, in, out)
	}
	var err error
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(nil)
		if r.p.PerTryTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, r.p.PerTryTimeout)
		}
		err = c.do(actx, base, method, path, in, out)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's deadline, not the attempt's: stop retrying.
			return err
		}
		ok, ra := retryDecision(err, method)
		if !ok || attempt >= r.p.MaxAttempts-1 {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(r.backoff(attempt, ra)):
		}
	}
}
