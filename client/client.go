// Package client is the Go SDK for the xbarsec attack-campaign service:
// a typed, versioned client for every endpoint xbarserve exposes,
// speaking the public wire protocol of xbarsec/api. It is the supported
// way to drive a server programmatically — the CLI's remote paths, the
// examples and the HTTP tests are all built on it.
//
//	c, err := client.New("http://localhost:8080")
//	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{
//		Victim: "mnist", Mode: api.ModeRawOutput, Budget: 100,
//	})
//	resp, err := sess.Query(ctx, input)          // one round trip
//	batch, err := sess.QueryBatch(ctx, inputs)   // one round trip, N queries
//
// Every method returns *api.Error for protocol failures, so callers
// switch on the machine-readable code:
//
//	if api.CodeOf(err) == api.CodeBudgetExhausted { ... }
//
// The first call on a Client performs a one-time version handshake
// (GET <PathPrefix>/version) and refuses to proceed — with code
// "version_mismatch" — when the server speaks a different major
// protocol version.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"xbarsec/api"
)

// maxResponseBody bounds how much of any response the SDK will read:
// full-scale experiment renders are megabytes, so the cap is generous,
// but a misbehaving endpoint must not OOM the client.
const maxResponseBody = 64 << 20

// Client speaks the protocol version of the api package it was built
// against (api.Major) to one server. It is safe for concurrent use by
// multiple goroutines.
type Client struct {
	base         string
	hc           *http.Client
	checkVersion bool
	retry        *retrier // nil = single attempt per call

	mu         sync.Mutex
	checked    bool // version handshake reached a verdict
	versionErr error
	version    api.VersionInfo
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is a plain &http.Client{}:
// no global state shared with http.DefaultClient, no client-side
// timeout — long-running ?wait=1 experiment launches are bounded by the
// caller's context instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithoutVersionCheck disables the automatic version handshake. For
// tests and protocol exploration only — a mismatched major version then
// surfaces as arbitrary decode errors instead of one typed refusal.
func WithoutVersionCheck() Option {
	return func(c *Client) { c.checkVersion = false }
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). It performs no I/O: the version handshake
// runs lazily on the first call, so constructing a client is free and
// cannot fail on an unreachable server.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	c := &Client{
		base:         strings.TrimRight(baseURL, "/"),
		hc:           &http.Client{},
		checkVersion: true,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Version fetches the server's version info. It does not require (or
// trigger) the compatibility handshake — it is the one call that makes
// sense against any server version.
func (c *Client) Version(ctx context.Context) (api.VersionInfo, error) {
	var v api.VersionInfo
	err := c.doRetry(ctx, c.base, http.MethodGet, api.PathPrefix+"/version", nil, &v)
	return v, err
}

// ensureCompatible runs the one-time version handshake. A transient
// failure (server unreachable) is returned but not cached, so the next
// call retries; an incompatible server is cached as a permanent typed
// refusal.
func (c *Client) ensureCompatible(ctx context.Context) error {
	if !c.checkVersion {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.checked {
		return c.versionErr
	}
	// The handshake is an idempotent read, so it rides the retry policy
	// like any other GET — a transport blip on the very first call must
	// not fail what a later poll would have survived.
	var v api.VersionInfo
	err := c.doRetry(ctx, c.base, http.MethodGet, api.PathPrefix+"/version", nil, &v)
	if err != nil {
		var se *statusError
		if errors.As(err, &se) && se.status == http.StatusNotFound {
			// No version endpoint at all: a pre-versioning (or foreign)
			// server. Permanently incompatible by definition.
			c.checked = true
			c.versionErr = &api.Error{
				Code:    api.CodeVersionMismatch,
				Message: "server exposes no " + api.PathPrefix + "/version endpoint",
				Detail:  "client speaks " + api.VersionString(),
			}
			return c.versionErr
		}
		return err
	}
	if v.Major != api.Major {
		c.checked = true
		c.versionErr = &api.Error{
			Code:    api.CodeVersionMismatch,
			Message: fmt.Sprintf("server speaks protocol v%d.%d, client %s", v.Major, v.Minor, api.VersionString()),
		}
		return c.versionErr
	}
	c.version = v
	c.checked = true
	return nil
}

// call is the checked request path every endpoint method uses: version
// handshake, then one JSON round trip — retried under the client's
// retry policy when one is configured (WithRetry), with cluster
// redirects followed transparently.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	_, err := c.callBase(ctx, c.base, method, path, in, out)
	return err
}

// maxRedirectHops bounds how many node_redirect answers one call will
// follow. Ownership in a static ring resolves in one hop; a second
// tolerates a membership disagreement mid-rollout; beyond that the
// cluster is misconfigured (a redirect loop) and the typed error
// surfaces to the caller.
const maxRedirectHops = 3

// callBase is call starting from an explicit base URL, returning the
// base that finally answered — the handle-pinning primitive: a session
// opened via redirect must keep talking to the node that owns it.
func (c *Client) callBase(ctx context.Context, base, method, path string, in, out any) (string, error) {
	if err := c.ensureCompatible(ctx); err != nil {
		return base, err
	}
	var err error
	for hop := 0; ; hop++ {
		err = c.doRetry(ctx, base, method, path, in, out)
		if err == nil {
			return base, nil
		}
		target := redirectTarget(err)
		if target == "" || hop >= maxRedirectHops {
			return base, err
		}
		base = target
	}
}

// redirectTarget extracts the owner base URL from a node_redirect
// envelope, "" when err is anything else (or the target is not a
// well-formed http(s) URL — a malformed redirect is surfaced, never
// followed).
func redirectTarget(err error) string {
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNodeRedirect || ae.RedirectTo == "" {
		return ""
	}
	u, perr := url.Parse(ae.RedirectTo)
	if perr != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return ""
	}
	return strings.TrimRight(ae.RedirectTo, "/")
}

// do performs one JSON round trip. Non-2xx responses decode into the
// protocol's *api.Error envelope (synthesizing one with code "internal"
// when the body is not an envelope, e.g. a plain-text 404 from the
// mux), so every error this package returns carries a code.
func (c *Client) do(ctx context.Context, base, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding %s %s request: %w", method, path, err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return fmt.Errorf("client: building %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	if err != nil {
		return fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		// The Retry-After header is protocol (mirrored from the envelope's
		// retry_after); fold it back in so retry logic sees one hint even
		// when only the header carries it (a proxy-injected 429, say).
		retryAfter := 0
		if ra, convErr := strconv.Atoi(resp.Header.Get("Retry-After")); convErr == nil && ra > 0 {
			retryAfter = ra
		}
		var e api.Error
		if json.Unmarshal(data, &e) == nil && e.Code != "" {
			if e.RetryAfter == 0 {
				e.RetryAfter = retryAfter
			}
			return &e
		}
		return &statusError{
			status: resp.StatusCode,
			e: &api.Error{
				Code:       api.CodeInternal,
				Message:    fmt.Sprintf("%s %s: HTTP %d", method, path, resp.StatusCode),
				Detail:     truncate(string(data), 200),
				RetryAfter: retryAfter,
			},
		}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// statusError is a synthesized envelope (a non-protocol error body)
// carrying the raw HTTP status structurally, so the version handshake
// can recognize a pre-versioning server without parsing message text.
// It unwraps to its *api.Error, so api.CodeOf sees through it.
type statusError struct {
	e      *api.Error
	status int
}

func (s *statusError) Error() string { return s.e.Error() }
func (s *statusError) Unwrap() error { return s.e }

func truncate(s string, n int) string {
	s = strings.TrimSpace(s)
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

// Health probes the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	var h api.Health
	return c.do(ctx, c.base, http.MethodGet, "/healthz", nil, &h)
}

// Victims lists the server's registered victims with serving stats.
func (c *Client) Victims(ctx context.Context) ([]api.VictimStats, error) {
	var out []api.VictimStats
	err := c.call(ctx, http.MethodGet, api.PathPrefix+"/victims", nil, &out)
	return out, err
}

// Stats fetches a point-in-time service snapshot.
func (c *Client) Stats(ctx context.Context) (api.Stats, error) {
	var out api.Stats
	err := c.call(ctx, http.MethodGet, api.PathPrefix+"/stats", nil, &out)
	return out, err
}

// RunCampaign runs (or fetches from the server's artifact cache) one
// extraction/evasion campaign.
func (c *Client) RunCampaign(ctx context.Context, req api.CampaignRequest) (*api.CampaignResult, error) {
	var out api.CampaignResult
	if err := c.call(ctx, http.MethodPost, api.PathPrefix+"/campaigns", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RunExtract runs (or fetches from the server's artifact cache) one
// power-side-channel extraction job.
func (c *Client) RunExtract(ctx context.Context, req api.ExtractRequest) (*api.ExtractResult, error) {
	var out api.ExtractResult
	if err := c.call(ctx, http.MethodPost, api.PathPrefix+"/extract", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
