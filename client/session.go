package client

import (
	"context"
	"net/http"

	"xbarsec/api"
)

// Session is a client-side handle on one attacker session. Methods are
// safe for concurrent use (the handle holds only the immutable id, the
// node base URL that owns the session, and the open-time snapshot);
// per-call accounting comes back on each response.
type Session struct {
	c    *Client
	base string // the node that opened (and therefore hosts) the session
	info api.Session
}

// OpenSession opens an attacker session against a registered victim.
// Against a cluster, the open follows the victim's ownership redirect
// and the returned handle stays pinned to the owning node — session
// state (budget, noise stream) is node-local, so its queries must not
// wander.
func (c *Client) OpenSession(ctx context.Context, req api.OpenSessionRequest) (*Session, error) {
	var info api.Session
	base, err := c.callBase(ctx, c.base, http.MethodPost, api.PathPrefix+"/sessions", req, &info)
	if err != nil {
		return nil, err
	}
	return &Session{c: c, base: base, info: info}, nil
}

// SessionByID wraps an existing session id (e.g. one persisted across
// process restarts) without a server round trip; the Info snapshot is
// then zero until Refresh. The handle starts at the client's own base —
// callers resuming a session on another cluster node construct their
// client against that node.
func (c *Client) SessionByID(id string) *Session {
	return &Session{c: c, base: c.base, info: api.Session{ID: id}}
}

// ID returns the session identifier — the only credential needed to
// spend or close the session.
func (s *Session) ID() string { return s.info.ID }

// Info returns the open-time (or last Refresh) session snapshot. Use
// Refresh — or the accounting fields on each query response — for live
// budget numbers.
func (s *Session) Info() api.Session { return s.info }

// Refresh fetches the session's current accounting.
func (s *Session) Refresh(ctx context.Context) (api.Session, error) {
	var info api.Session
	if _, err := s.c.callBase(ctx, s.base, http.MethodGet, api.PathPrefix+"/sessions/"+s.info.ID, nil, &info); err != nil {
		return api.Session{}, err
	}
	return info, nil
}

// Query runs one oracle query: one HTTP round trip, one budget charge
// iff a response is delivered.
func (s *Session) Query(ctx context.Context, input []float64) (api.QueryResponse, error) {
	var out api.QueryResponse
	_, err := s.c.callBase(ctx, s.base, http.MethodPost, api.PathPrefix+"/sessions/"+s.info.ID+"/query", api.QueryRequest{Input: input}, &out)
	return out, err
}

// QueryBatch runs a whole query slice in one HTTP round trip, served
// server-side as one coalesced batch: responses are bit-identical to
// len(inputs) sequential Query calls, budget accounting is per query
// (after mid-batch exhaustion the remaining outcomes carry the typed
// error "budget_exhausted"), but the cost is one round trip and a
// constant number of array passes. This is the path that makes remote
// collection scale with the server's coalescer instead of with HTTP
// latency.
func (s *Session) QueryBatch(ctx context.Context, inputs [][]float64) (api.QueryBatchResponse, error) {
	var out api.QueryBatchResponse
	_, err := s.c.callBase(ctx, s.base, http.MethodPost, api.PathPrefix+"/sessions/"+s.info.ID+"/queries", api.QueryBatchRequest{Inputs: inputs}, &out)
	return out, err
}

// Close closes the session; its remaining budget is forfeited.
func (s *Session) Close(ctx context.Context) error {
	var out api.SessionClosed
	_, err := s.c.callBase(ctx, s.base, http.MethodDelete, api.PathPrefix+"/sessions/"+s.info.ID, nil, &out)
	return err
}
