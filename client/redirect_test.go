package client_test

// Redirect-following tests against fake servers: the SDK must follow a
// typed node_redirect to the named peer, bound the hop count, refuse
// malformed targets, and pin session handles to the node that opened
// them.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"xbarsec/api"
	"xbarsec/client"
)

// redirectTo writes the typed node_redirect envelope.
func redirectTo(w http.ResponseWriter, target string) {
	w.WriteHeader(api.CodeNodeRedirect.HTTPStatus())
	_ = json.NewEncoder(w).Encode(&api.Error{
		Code: api.CodeNodeRedirect, Message: "key owned elsewhere", RedirectTo: target,
	})
}

// TestRedirectFollowed pins the happy path: the wrong node answers 421
// with the owner's URL and the SDK re-issues the request there — one
// hop, transparent to the caller.
func TestRedirectFollowed(t *testing.T) {
	var ownerHits atomic.Int64
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != api.PathPrefix+"/experiments" {
			http.NotFound(w, r)
			return
		}
		ownerHits.Add(1)
		_ = json.NewEncoder(w).Encode(api.Job{
			ID: "job-1@b", Status: api.JobDone,
			Result: &api.ExperimentResult{Name: "x", Render: "owner ran this"},
		})
	}))
	defer owner.Close()

	var wrongHits atomic.Int64
	wrong := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case api.PathPrefix + "/version":
			versionOK(w)
		case api.PathPrefix + "/experiments":
			wrongHits.Add(1)
			redirectTo(w, owner.URL)
		default:
			http.NotFound(w, r)
		}
	}))
	defer wrong.Close()

	c, err := client.New(wrong.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunExperiment(context.Background(), api.ExperimentSpec{Name: "x", Seed: 1})
	if err != nil {
		t.Fatalf("redirected run: %v", err)
	}
	if res.Render != "owner ran this" {
		t.Fatalf("result = %+v", res)
	}
	if wrongHits.Load() != 1 || ownerHits.Load() != 1 {
		t.Fatalf("hits = %d wrong / %d owner, want 1 / 1", wrongHits.Load(), ownerHits.Load())
	}
}

// TestRedirectHopsBounded pins the loop guard: a server that always
// redirects (here: to itself) exhausts the hop budget and the typed
// error surfaces instead of an unbounded chase.
func TestRedirectHopsBounded(t *testing.T) {
	var hits atomic.Int64
	var url string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == api.PathPrefix+"/version" {
			versionOK(w)
			return
		}
		hits.Add(1)
		redirectTo(w, url)
	}))
	defer srv.Close()
	url = srv.URL

	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Stats(context.Background())
	if api.CodeOf(err) != api.CodeNodeRedirect {
		t.Fatalf("err = %v, want the typed node_redirect surfaced", err)
	}
	// The first attempt plus maxRedirectHops follow-ups, then give up.
	if got := hits.Load(); got != 4 {
		t.Fatalf("server hit %d times, want 4 (1 + 3 hops)", got)
	}
}

// TestRedirectMalformedTargetNotFollowed pins the safety check: a
// redirect without a usable http(s) target is an error, not a request
// to an arbitrary address.
func TestRedirectMalformedTargetNotFollowed(t *testing.T) {
	for _, target := range []string{"", "ftp://evil", "http://", "not a url"} {
		var hits atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == api.PathPrefix+"/version" {
				versionOK(w)
				return
			}
			hits.Add(1)
			redirectTo(w, target)
		}))
		c, err := client.New(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Stats(context.Background())
		if api.CodeOf(err) != api.CodeNodeRedirect {
			t.Fatalf("target %q: err = %v, want node_redirect surfaced", target, err)
		}
		if hits.Load() != 1 {
			t.Fatalf("target %q followed: %d hits, want 1", target, hits.Load())
		}
		srv.Close()
	}
}

// TestRedirectSessionPinned pins the handle contract: a session opened
// through a redirect sends every subsequent call to the node that
// opened it — session state is node-local, queries must not wander back
// to the client's base.
func TestRedirectSessionPinned(t *testing.T) {
	var ownerOpens, ownerQueries atomic.Int64
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case api.PathPrefix + "/sessions":
			ownerOpens.Add(1)
			_ = json.NewEncoder(w).Encode(api.Session{ID: "s-1", Victim: "toy", Remaining: 3})
		case api.PathPrefix + "/sessions/s-1/query":
			ownerQueries.Add(1)
			_ = json.NewEncoder(w).Encode(api.QueryResponse{Label: 7, Queries: 1, Remaining: 2})
		default:
			http.NotFound(w, r)
		}
	}))
	defer owner.Close()

	var wrongAfterOpen atomic.Int64
	opened := false
	wrong := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case api.PathPrefix + "/version":
			versionOK(w)
		case api.PathPrefix + "/sessions":
			opened = true
			redirectTo(w, owner.URL)
		default:
			if opened {
				wrongAfterOpen.Add(1)
			}
			http.NotFound(w, r)
		}
	}))
	defer wrong.Close()

	c, err := client.New(wrong.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "toy", Mode: api.ModeLabelOnly, Budget: 3})
	if err != nil {
		t.Fatalf("redirected open: %v", err)
	}
	qr, err := sess.Query(ctx, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("query on pinned handle: %v", err)
	}
	if qr.Label != 7 || qr.Remaining != 2 {
		t.Fatalf("query = %+v", qr)
	}
	if ownerOpens.Load() != 1 || ownerQueries.Load() != 1 {
		t.Fatalf("owner saw %d opens / %d queries, want 1 / 1", ownerOpens.Load(), ownerQueries.Load())
	}
	if wrongAfterOpen.Load() != 0 {
		t.Fatalf("wrong node saw %d calls after the open — handle not pinned", wrongAfterOpen.Load())
	}
}
