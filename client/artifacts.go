package client

import (
	"context"
	"net/http"

	"xbarsec/api"
)

// Cluster fetches the server's static cluster membership. A single-node
// server answers with Enabled false.
func (c *Client) Cluster(ctx context.Context) (api.ClusterInfo, error) {
	var out api.ClusterInfo
	err := c.call(ctx, http.MethodGet, api.PathPrefix+"/cluster", nil, &out)
	return out, err
}

// Artifact fetches one spilled artifact by content address. The server
// only serves artifacts whose provenance chain verifies server-side;
// use VerifiedArtifact to also check the chain locally.
func (c *Client) Artifact(ctx context.Context, id string) (*api.Artifact, error) {
	var out api.Artifact
	if err := c.call(ctx, http.MethodGet, api.PathPrefix+"/artifacts/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ArtifactProof fetches one artifact's Merkle provenance chain.
func (c *Client) ArtifactProof(ctx context.Context, id string) (*api.ArtifactProof, error) {
	var out api.ArtifactProof
	if err := c.call(ctx, http.MethodGet, api.PathPrefix+"/artifacts/"+id+"/proof", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// VerifiedArtifact fetches an artifact together with its provenance
// chain and verifies the chain against the payload client-side before
// returning either — the trust-but-verify read: the caller holds bytes
// it has itself proven were derived from the proof's spec key and code
// identity, not merely bytes the server vouched for.
func (c *Client) VerifiedArtifact(ctx context.Context, id string) (*api.Artifact, *api.ArtifactProof, error) {
	art, err := c.Artifact(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	proof, err := c.ArtifactProof(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	if err := proof.Verify(art.Payload); err != nil {
		return nil, nil, err
	}
	return art, proof, nil
}
