package client_test

// SDK round-trip tests: every endpoint and every typed error code,
// driven against a real service behind httptest — exactly the stack an
// external consumer talks to.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xbarsec/api"
	"xbarsec/client"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/service"
)

// buildVictim trains a tiny deterministic victim for SDK tests.
func buildVictim(t testing.TB, name string, seed int64) *service.Victim {
	t.Helper()
	src := rng.New(seed)
	gen := func(label string, n int) *dataset.Dataset {
		ds, err := dataset.GenerateMNISTLike(src.Split(label), n, dataset.MNISTLikeConfig{
			Size: 10, StrokeWidth: 0.06, Jitter: 0.4, PixelNoise: 0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	train, test := gen("train", 120), gen("test", 60)
	net, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 8, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9, ZeroInit: true,
	}, src.Split("fit"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := crossbar.DefaultDeviceConfig()
	cfg.GOff = 0
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := service.NewVictim(name, net, hw, train, test)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// fixture boots a service with one victim and returns an SDK client.
func fixture(t *testing.T, cfg service.Config) (*client.Client, *service.Service, *service.Victim) {
	t.Helper()
	v := buildVictim(t, "toy", 17)
	svc := service.New(cfg)
	if err := svc.Register(v); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, svc, v
}

func TestNewValidatesBaseURL(t *testing.T) {
	if _, err := client.New("ftp://nope"); err == nil {
		t.Fatal("non-http scheme accepted")
	}
	if _, err := client.New("://bad"); err == nil {
		t.Fatal("unparseable URL accepted")
	}
}

func TestHealthAndVersion(t *testing.T) {
	c, _, _ := fixture(t, service.Config{Seed: 17})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Major != api.Major || v.Minor != api.Minor || v.Version != api.VersionString() {
		t.Fatalf("version = %+v", v)
	}
	if v.Experiments != len(engine.Names()) || len(v.ExperimentsHash) != 64 {
		t.Fatalf("registry digest = %+v", v)
	}
}

func TestVersionMismatchRefusal(t *testing.T) {
	// A server speaking a different major version: every SDK call is
	// refused with the typed code before any request fires.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == api.PathPrefix+"/version" {
			_ = json.NewEncoder(w).Encode(api.VersionInfo{Version: "v99.0", Major: 99})
			return
		}
		t.Errorf("request leaked past the version gate: %s", r.URL.Path)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Victims(ctx); api.CodeOf(err) != api.CodeVersionMismatch {
		t.Fatalf("err = %v, want version_mismatch", err)
	}
	// The verdict is cached: still refused, still typed.
	if _, err := c.Stats(ctx); api.CodeOf(err) != api.CodeVersionMismatch {
		t.Fatalf("second call err = %v, want version_mismatch", err)
	}
}

func TestVersionMissingEndpointRefusal(t *testing.T) {
	// A pre-versioning server (no versioned endpoints at all) is permanently
	// incompatible.
	srv := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Victims(context.Background()); api.CodeOf(err) != api.CodeVersionMismatch {
		t.Fatalf("err = %v, want version_mismatch", err)
	}
}

func TestWithoutVersionCheck(t *testing.T) {
	// The escape hatch talks to anything.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == api.PathPrefix+"/stats" {
			_ = json.NewEncoder(w).Encode(api.Stats{Sessions: 7})
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c, err := client.New(srv.URL, client.WithoutVersionCheck())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil || st.Sessions != 7 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
}

func TestNonEnvelopeErrorSynthesized(t *testing.T) {
	// A non-JSON 500 still comes back as a typed *api.Error.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == api.PathPrefix+"/version" {
			_ = json.NewEncoder(w).Encode(api.VersionInfo{Version: api.VersionString(), Major: api.Major})
			return
		}
		http.Error(w, "kaboom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Victims(context.Background())
	if api.CodeOf(err) != api.CodeInternal || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want synthesized internal envelope", err)
	}
}

func TestSessionRoundTrip(t *testing.T) {
	c, _, v := fixture(t, service.Config{Seed: 17, Workers: 2})
	ctx := context.Background()

	victims, err := c.Victims(ctx)
	if err != nil || len(victims) != 1 || victims[0].Name != "toy" {
		t.Fatalf("victims = %+v, %v", victims, err)
	}

	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{
		Victim: "toy", Mode: api.ModeRawOutput, MeasurePower: true, Budget: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() == "" || sess.Info().Victim != "toy" || sess.Info().Budget != 3 {
		t.Fatalf("session = %+v", sess.Info())
	}

	qr, err := sess.Query(ctx, v.Test().X.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Raw) != 10 || qr.Power <= 0 || qr.Queries != 1 || qr.Remaining != 2 {
		t.Fatalf("query = %+v", qr)
	}
	// The wire result matches the in-process hardware bit for bit
	// (JSON float64 round-trips exactly).
	wantY, err := v.Hardware().Forward(v.Test().X.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantY {
		if qr.Raw[i] != wantY[i] {
			t.Fatalf("raw[%d] = %v, want %v", i, qr.Raw[i], wantY[i])
		}
	}

	// A detached handle on the same id sees the same accounting.
	info, err := c.SessionByID(sess.ID()).Refresh(ctx)
	if err != nil || info.Queries != 1 {
		t.Fatalf("refresh = %+v, %v", info, err)
	}

	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, v.Test().X.Row(0)); api.CodeOf(err) != api.CodeUnknownSession {
		t.Fatalf("closed session err = %v", err)
	}
}

func TestQueryBatchRoundTrip(t *testing.T) {
	c, _, v := fixture(t, service.Config{Seed: 17, Workers: 2})
	ctx := context.Background()
	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{
		Victim: "toy", Mode: api.ModeRawOutput, MeasurePower: true, Budget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float64, 6)
	for i := range inputs {
		inputs[i] = v.Test().X.Row(i)
	}
	batch, err := sess.QueryBatch(ctx, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 6 || batch.Queries != 4 || batch.Remaining != 0 {
		t.Fatalf("batch accounting = %d results, %d/%d", len(batch.Results), batch.Queries, batch.Remaining)
	}
	for i, r := range batch.Results {
		if i < 4 {
			if r.Error != nil || len(r.Raw) != 10 || r.Power <= 0 {
				t.Fatalf("admitted outcome %d = %+v", i, r)
			}
		} else if r.Error == nil || r.Error.Code != api.CodeBudgetExhausted {
			t.Fatalf("refused outcome %d = %+v", i, r)
		}
	}
	// A fully refused batch fails like a single exhausted query.
	if _, err := sess.QueryBatch(ctx, inputs[:2]); api.CodeOf(err) != api.CodeBudgetExhausted {
		t.Fatalf("exhausted batch err = %v", err)
	}
	// Malformed input inside a batch: typed bad request, nothing charged.
	sess2, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "toy", Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.QueryBatch(ctx, [][]float64{v.Test().X.Row(0), {1, 2}}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("short batch input err = %v", err)
	}
	if _, err := sess2.QueryBatch(ctx, nil); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("empty batch err = %v", err)
	}
	info, err := sess2.Refresh(ctx)
	if err != nil || info.Queries != 0 {
		t.Fatalf("malformed batch charged budget: %+v, %v", info, err)
	}
}

func TestCampaignExtractAndStats(t *testing.T) {
	c, _, _ := fixture(t, service.Config{Seed: 17, Workers: 2})
	ctx := context.Background()
	spec := api.CampaignRequest{Victim: "toy", Mode: api.ModeLabelOnly, Seed: 5, Queries: 20, SurrogateEpochs: 3}
	res, err := c.RunCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.QueriesCharged != 20 {
		t.Fatalf("campaign = %+v", res)
	}
	again, err := c.RunCampaign(ctx, spec)
	if err != nil || !again.Cached {
		t.Fatalf("replay = %+v, %v", again, err)
	}
	again.Cached = res.Cached
	if *again != *res {
		t.Fatalf("cached campaign differs: %+v vs %+v", again, res)
	}

	ex, err := c.RunExtract(ctx, api.ExtractRequest{Victim: "toy", Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Signals) != 100 || len(ex.Norms) != 100 || ex.ProbeQueries != 200 {
		t.Fatalf("extract = %d signals, %d probes", len(ex.Signals), ex.ProbeQueries)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Campaigns != 2 || st.CachedArtifacts < 2 || st.CachedArtifactBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	c, _, _ := fixture(t, service.Config{Seed: 17})
	ctx := context.Background()
	infos, err := c.Experiments(ctx)
	if err != nil || len(infos) != len(engine.Names()) {
		t.Fatalf("experiments = %d, %v", len(infos), err)
	}
	spec := api.ExperimentSpec{Name: "ablate-trace", Seed: 29, Scale: 0.01}
	res, err := c.RunExperiment(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render, "Extension A6") || len(res.Result) == 0 {
		t.Fatalf("experiment result incomplete: %+v", res)
	}
	job, err := c.LaunchExperiment(ctx, spec)
	if err != nil || job.ID == "" {
		t.Fatalf("launch = %+v, %v", job, err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	done, err := c.WaitJob(waitCtx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != api.JobDone || done.Result == nil || !done.Result.Cached {
		t.Fatalf("waited job = %+v", done)
	}
	if got, err := c.ExperimentJob(ctx, job.ID); err != nil || got.Status != api.JobDone {
		t.Fatalf("poll = %+v, %v", got, err)
	}
}

// blockGate releases the registered blocking test experiment.
var blockGate = make(chan struct{})

var registerBlocker = sync.OnceFunc(func() {
	engine.Register(engine.Experiment{
		Name:  "sdk-test-blocker",
		Title: "blocks until released (client tests only)",
		Run: func(opts engine.Options) (engine.Result, error) {
			<-blockGate
			return nil, context.Canceled
		},
	})
})

// TestEveryTypedErrorCode drives one request per protocol error code
// and asserts the SDK surfaces exactly that code.
func TestEveryTypedErrorCode(t *testing.T) {
	registerBlocker()
	c, svc, v := fixture(t, service.Config{
		Seed: 17, MaxSessionsPerVictim: 1, MaxExperimentJobs: 1,
	})
	ctx := context.Background()

	// bad_request
	if _, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "toy", Mode: "psychic"}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("bad_request: %v", err)
	}
	// unknown_victim
	if _, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "ghost"}); api.CodeOf(err) != api.CodeUnknownVictim {
		t.Fatalf("unknown_victim: %v", err)
	}
	// unknown_session
	if _, err := c.SessionByID("toy-s9-deadbeef").Refresh(ctx); api.CodeOf(err) != api.CodeUnknownSession {
		t.Fatalf("unknown_session: %v", err)
	}
	// unknown_experiment
	if _, err := c.RunExperiment(ctx, api.ExperimentSpec{Name: "ghost"}); api.CodeOf(err) != api.CodeUnknownExperiment {
		t.Fatalf("unknown_experiment: %v", err)
	}
	// unknown_job
	if _, err := c.ExperimentJob(ctx, "job-424242"); api.CodeOf(err) != api.CodeUnknownJob {
		t.Fatalf("unknown_job: %v", err)
	}

	// session_limit (cap 1): the second open is refused.
	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "toy", Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenSession(ctx, api.OpenSessionRequest{Victim: "toy"}); api.CodeOf(err) != api.CodeSessionLimit {
		t.Fatalf("session_limit: %v", err)
	}

	// budget_exhausted (budget 1): the second query is refused.
	if _, err := sess.Query(ctx, v.Test().X.Row(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, v.Test().X.Row(1)); api.CodeOf(err) != api.CodeBudgetExhausted {
		t.Fatalf("budget_exhausted: %v", err)
	}

	// job_limit (table bound 1): a blocked running job refuses the next
	// launch.
	job, err := c.LaunchExperiment(ctx, api.ExperimentSpec{Name: "sdk-test-blocker"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LaunchExperiment(ctx, api.ExperimentSpec{Name: "sdk-test-blocker", Seed: 2}); api.CodeOf(err) != api.CodeJobLimit {
		t.Fatalf("job_limit: %v", err)
	}
	close(blockGate)
	waitCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if _, err := c.WaitJob(waitCtx, job.ID, time.Millisecond); err == nil {
		t.Fatal("blocker job must fail")
	}

	// victim_closed / service_closed: shut the service down under the
	// live handler. The probe session needs unspent budget (the budget
	// check precedes the hardware path) — swap the exhausted one out
	// first.
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	sess, err = c.OpenSession(ctx, api.OpenSessionRequest{Victim: "toy", Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := sess.Query(ctx, v.Test().X.Row(0)); api.CodeOf(err) != api.CodeVictimClosed {
		t.Fatalf("victim_closed: %v", err)
	}
	if _, err := c.RunCampaign(ctx, api.CampaignRequest{Victim: "toy", Mode: api.ModeLabelOnly, Queries: 5}); api.CodeOf(err) != api.CodeServiceClosed {
		t.Fatalf("service_closed: %v", err)
	}
	// version_mismatch and internal are covered by the dedicated fake-
	// server tests above; together that is every code the protocol
	// defines.
}
