module xbarsec

go 1.24
