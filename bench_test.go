package xbarsec_test

// One benchmark per table and figure of the paper, plus ablations and
// kernel microbenchmarks. The experiment benchmarks run reduced-scale
// sweeps (Options.Scale < 1) so `go test -bench=.` finishes in minutes;
// the shapes they print match the paper's (see EXPERIMENTS.md). Use
// `go run ./cmd/xbarattack -scale 1 all` for paper-sized sweeps.

import (
	"fmt"
	"testing"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/service"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/surrogate"
	"xbarsec/internal/tensor"
)

// benchOpts keeps the macro-benchmarks tractable and pins Workers to 1 so
// the per-figure benchmarks measure the serial baseline; the *Workers
// benchmarks below measure the parallel engine against it. Results are
// bit-identical across worker counts at a fixed seed, so the comparison
// is pure wall-clock.
func benchOpts() experiment.Options {
	return experiment.Options{Seed: 1, Scale: 0.05, Runs: 2, Workers: 1}
}

// withBenchWorkers returns benchOpts at a given worker count.
func withBenchWorkers(w int) experiment.Options {
	o := benchOpts()
	o.Workers = w
	return o
}

// BenchmarkTable1 regenerates Table I (correlation between loss
// sensitivity and power-extracted column 1-norms, 4 configurations).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunTable1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
			b.ReportMetric(res.Rows[0].CorrOfMeanTest, "mnist-linear-corr-of-mean")
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (sensitivity vs 1-norm heatmaps).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunFig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig4 regenerates Figure 4 (single-pixel attack strength
// sweeps, 5 methods x 4 configurations).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunFig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// fig5BenchOptions shrinks the Figure 5 sweep to a bench-sized grid.
func fig5BenchOptions() experiment.Fig5Options {
	return experiment.Fig5Options{
		Options:         benchOpts(),
		Queries:         []int{10, 50, 200},
		Lambdas:         []float64{0, 0.004},
		SurrogateEpochs: 20,
	}
}

// BenchmarkFig5 regenerates Figure 5 (surrogate black-box attacks with
// power information: surrogate accuracy, oracle adversarial accuracy, and
// significance-tested improvement — panels a/b/c of each row).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunFig5(fig5BenchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkAblationNoise regenerates ablation A1 (extraction fidelity vs
// measurement noise and device quantization).
func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunNoiseAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkAblationSearch regenerates ablation A2 (query-efficient
// max-1-norm search vs exhaustive measurement).
func BenchmarkAblationSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunSearchAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkAblationMultiPixel regenerates ablation A3 (multi-pixel attack
// decay with random signs, paper §III).
func BenchmarkAblationMultiPixel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunMultiPixelAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkTable1Workers measures the parallel experiment engine against
// the serial BenchmarkTable1 baseline at several worker counts. On a
// multi-core machine the (config x run) grid of 8 victims scales with
// workers; on one core it degrades gracefully to serial speed.
func BenchmarkTable1Workers(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiment.ResetVictimStore()
				if _, err := experiment.RunTable1(withBenchWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Workers measures the parallel single-pixel sweep (configs
// x per-sample attack evaluations) against the serial BenchmarkFig4.
func BenchmarkFig4Workers(b *testing.B) {
	for _, w := range []int{4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiment.ResetVictimStore()
				if _, err := experiment.RunFig4(withBenchWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- victim store ------------------------------------------------------

// BenchmarkVictimStoreColdFig3 measures Figure 3 with an empty victim
// store each iteration: the full train-and-evaluate pipeline, the
// number every pre-store BENCH entry recorded. (Every experiment
// benchmark above also resets the store per iteration for the same
// comparability.)
func BenchmarkVictimStoreColdFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		if _, err := experiment.RunFig3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVictimStoreWarmFig3 measures Figure 3 with the victims
// already in the store — the steady state of a process that has run the
// experiment (or any experiment sharing its streams) before, e.g. the
// xbarserve /experiments endpoint replaying a grid at a known seed. The
// cold/warm ratio is the victim-store hit speedup BENCH_4.json records.
func BenchmarkVictimStoreWarmFig3(b *testing.B) {
	experiment.ResetVictimStore()
	if _, err := experiment.RunFig3(benchOpts()); err != nil {
		b.Fatal(err)
	}
	warm := experiment.StoreStats().Trainings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFig3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if d := experiment.StoreStats().Trainings - warm; d != 0 {
		b.Fatalf("warm benchmark trained %d victims", d)
	}
}

// crossRunnerSuite runs the three runners that draw on the four shared
// paper configurations (Table I, Figure 3, Figure 4) back to back — the
// sequence a CLI user replays most often. Under the config-rooted victim
// streams every runner derives the same victim for the same config, so
// after the first runner the other two hit the store for every victim.
func crossRunnerSuite(b *testing.B, opts experiment.Options) {
	b.Helper()
	if _, err := experiment.RunFig3(opts); err != nil {
		b.Fatal(err)
	}
	if _, err := experiment.RunTable1(opts); err != nil {
		b.Fatal(err)
	}
	if _, err := experiment.RunFig4(opts); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkVictimStoreCrossRunnerCold measures the fig3+table1+fig4
// sequence from an empty store each iteration: four victim trainings
// amortized across three runners (pre-refactor, table1 and fig4 would
// each have retrained their own copies).
func BenchmarkVictimStoreCrossRunnerCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		crossRunnerSuite(b, benchOpts())
	}
}

// BenchmarkVictimStoreCrossRunnerWarm measures the same sequence with
// all four victims already stored. The cold/warm gap is the training
// cost the config-rooted streams dedupe; BENCH_8.json records both.
func BenchmarkVictimStoreCrossRunnerWarm(b *testing.B) {
	experiment.ResetVictimStore()
	crossRunnerSuite(b, benchOpts())
	trained := experiment.StoreStats().Trainings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crossRunnerSuite(b, benchOpts())
	}
	b.StopTimer()
	if d := experiment.StoreStats().Trainings - trained; d != 0 {
		b.Fatalf("warm cross-runner suite trained %d victims", d)
	}
}

// BenchmarkRegistryReplayWarm measures a registry-wide replay — every
// experiment `xbarattack all` runs, in paper order — with the victim
// store already primed by one full pass. This is the steady state of a
// long-lived xbarserve process re-serving the whole paper at a known
// seed; the warm pass must train zero victims.
func BenchmarkRegistryReplayWarm(b *testing.B) {
	opts := experiment.Options{Seed: 1, Scale: 0.01, Runs: 1, Workers: 1}
	runAll := func() {
		for _, name := range experiment.PaperOrder() {
			e, ok := engine.Lookup(name)
			if !ok {
				b.Fatalf("experiment %q not registered", name)
			}
			if _, err := e.Run(opts); err != nil {
				b.Fatalf("%s: %v", name, err)
			}
		}
	}
	experiment.ResetVictimStore()
	runAll()
	trained := experiment.StoreStats().Trainings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll()
	}
	b.StopTimer()
	if d := experiment.StoreStats().Trainings - trained; d != 0 {
		b.Fatalf("warm registry replay trained %d victims", d)
	}
}

// --- durability --------------------------------------------------------

// BenchmarkServiceColdRestart measures the crash-recovery boot path:
// each iteration reopens a state directory left behind by a server that
// journaled and completed one reduced-scale experiment, replays the job
// journal, inventories the artifact spill, and serves the finished
// result from disk without recomputing it. The open/serve/close cycle
// is the cold-start-after-restart number BENCH_7.json records; compare
// against VictimStoreColdFig3-style recompute times to see the spill
// win.
func BenchmarkServiceColdRestart(b *testing.B) {
	cfg := service.Config{
		Seed: 1, Workers: 1,
		StateDir: b.TempDir(), JournalFsync: true,
	}
	spec := service.ExperimentSpec{Name: "ablate-trace", Seed: 1, Scale: 0.01}
	svc, _, err := service.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Launch (not RunExperiment): launched jobs are the journaled ones,
	// so the restart below has a record to replay.
	job, err := svc.LaunchExperiment(spec)
	if err != nil {
		svc.Close()
		b.Fatal(err)
	}
	<-job.Done()
	if _, _, err := job.Snapshot(); err != nil {
		svc.Close()
		b.Fatal(err)
	}
	svc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc, rec, err := service.Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := svc.RunExperiment(spec)
		if err != nil {
			svc.Close()
			b.Fatal(err)
		}
		if rec.ReplayedJobs != 1 || !res.Cached {
			svc.Close()
			b.Fatalf("restart recomputed: replayed %d job(s), cached=%v", rec.ReplayedJobs, res.Cached)
		}
		svc.Close()
	}
}

// --- kernel microbenchmarks -------------------------------------------

func benchVictim(b *testing.B) (*nn.Network, *crossbar.Network, *dataset.Dataset) {
	b.Helper()
	src := rng.New(1)
	ds, err := dataset.GenerateMNISTLike(src.Split("d"), 200, dataset.DefaultMNISTLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	net, _, err := nn.TrainNew(ds, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 5, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true,
	}, src.Split("t"))
	if err != nil {
		b.Fatal(err)
	}
	hw, err := crossbar.NewNetwork(net, crossbar.DefaultDeviceConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return net, hw, ds
}

// BenchmarkCrossbarMVM measures one analog matrix-vector multiply on a
// 10x784 crossbar.
func BenchmarkCrossbarMVM(b *testing.B) {
	_, hw, ds := benchVictim(b)
	u := ds.X.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.Forward(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossbarPower measures one supply-current measurement.
func BenchmarkCrossbarPower(b *testing.B) {
	_, hw, ds := benchVictim(b)
	u := ds.X.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.Power(u); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatch returns a batch of 64 test inputs for the batched kernels.
func benchBatch(b *testing.B, ds *dataset.Dataset) [][]float64 {
	b.Helper()
	us := make([][]float64, 64)
	for i := range us {
		us[i] = ds.X.Row(i % ds.Len())
	}
	return us
}

// BenchmarkCrossbarMVMBatch measures 64 analog MVMs through one batched
// ForwardBatch call; compare ns/op against 64x BenchmarkCrossbarMVM to
// see the amortization of the effective-conductance pass.
func BenchmarkCrossbarMVMBatch(b *testing.B) {
	_, hw, ds := benchVictim(b)
	us := benchBatch(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.ForwardBatch(us); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossbarPowerBatch measures 64 supply-current measurements in
// one batched pass.
func BenchmarkCrossbarPowerBatch(b *testing.B) {
	_, hw, ds := benchVictim(b)
	us := benchBatch(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.PowerBatch(us); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNormExtraction measures a full 784-basis-query column-1-norm
// extraction.
func BenchmarkNormExtraction(b *testing.B) {
	_, hw, _ := benchVictim(b)
	probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.Crossbar()), 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probe.ExtractColumnSignals(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFGSM measures one FGSM example generation on a 784-dim input.
func BenchmarkFGSM(b *testing.B) {
	net, _, ds := benchVictim(b)
	oh := ds.OneHot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.FGSM(net, ds.X.Row(i%ds.Len()), oh.Row(i%ds.Len()), 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurrogateTrain measures surrogate training (50 queries, power
// loss enabled) — the inner loop of the Figure 5 sweep.
func BenchmarkSurrogateTrain(b *testing.B) {
	net, hw, ds := benchVictim(b)
	_ = net
	orc, err := oracle.New(hw, oracle.Config{Mode: oracle.RawOutput, MeasurePower: true})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := oracle.Collect(orc, ds, 50, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	cfg := surrogate.DefaultConfig()
	cfg.Lambda = 0.004
	cfg.Epochs = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surrogate.Train(qs, cfg, rng.New(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGemmTB measures the batched forward kernel at the training
// shape (32-sample mini-batch x 3072 inputs by 10 outputs).
func BenchmarkGemmTB(b *testing.B) {
	src := rng.New(1)
	u := tensor.New(32, 3072)
	w := tensor.New(10, 3072)
	s := tensor.New(32, 10)
	for _, m := range []*tensor.Matrix{u, w} {
		d := m.Data()
		for i := range d {
			d[i] = src.Uniform(-1, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmTB(s, u, w)
	}
}

// BenchmarkGemmTA measures the batch-gradient contraction kernel at the
// training shape (32 deltas x 10 outputs against 32 x 3072 inputs).
func BenchmarkGemmTA(b *testing.B) {
	src := rng.New(2)
	d := tensor.New(32, 10)
	u := tensor.New(32, 3072)
	g := tensor.New(10, 3072)
	for _, m := range []*tensor.Matrix{d, u} {
		dd := m.Data()
		for i := range dd {
			dd[i] = src.Uniform(-1, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmTA(g, d, u)
	}
}

// BenchmarkGemmTAFast measures the fast backend on the BenchmarkGemmTA
// shape — the reference-vs-fast pair BENCH_9.json tracks.
func BenchmarkGemmTAFast(b *testing.B) {
	src := rng.New(2)
	fast := tensor.NewFast(1)
	d := tensor.New(32, 10)
	u := tensor.New(32, 3072)
	g := tensor.New(10, 3072)
	for _, m := range []*tensor.Matrix{d, u} {
		dd := m.Data()
		for i := range dd {
			dd[i] = src.Uniform(-1, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fast.GemmTA(g, d, u)
	}
}

// BenchmarkGemmTBFast measures the fast backend on the BenchmarkGemmTB
// shape — the reference-vs-fast pair BENCH_9.json tracks.
func BenchmarkGemmTBFast(b *testing.B) {
	src := rng.New(1)
	fast := tensor.NewFast(1)
	u := tensor.New(32, 3072)
	w := tensor.New(10, 3072)
	s := tensor.New(32, 10)
	for _, m := range []*tensor.Matrix{u, w} {
		d := m.Data()
		for i := range d {
			d[i] = src.Uniform(-1, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fast.GemmTB(s, u, w)
	}
}

// --- GEMM backend sweep ------------------------------------------------

// sweepBackend pairs a backend with its BENCH label.
type sweepBackend struct {
	name string
	be   tensor.Backend
}

func sweepBackends() []sweepBackend {
	return []sweepBackend{
		{"reference", tensor.Reference()},
		{"fast", tensor.NewFast(1)},
	}
}

// BenchmarkGemmSweep sweeps the three training kernels over weight
// aspect ratios (tall / wide / square) and batch sizes 1–256 under both
// backends. Shapes follow the single-layer training loop: weights are
// out x in, activations batch x in, deltas batch x out; GemmTB is the
// batched forward, GemmTA the gradient contraction, Gemm the
// input-gradient product.
func BenchmarkGemmSweep(b *testing.B) {
	shapes := []struct {
		name    string
		out, in int
	}{
		{"tall", 16, 3072},
		{"wide", 3072, 16},
		{"square", 256, 256},
	}
	fill := func(seed int64, ms ...*tensor.Matrix) {
		src := rng.New(seed)
		for _, m := range ms {
			d := m.Data()
			for i := range d {
				d[i] = src.Uniform(-1, 1)
			}
		}
	}
	for _, bk := range sweepBackends() {
		for _, sh := range shapes {
			for _, batch := range []int{1, 32, 256} {
				u := tensor.New(batch, sh.in)
				w := tensor.New(sh.out, sh.in)
				d := tensor.New(batch, sh.out)
				fill(int64(batch), u, w, d)
				s := tensor.New(batch, sh.out)
				g := tensor.New(sh.out, sh.in)
				x := tensor.New(batch, sh.in)
				prefix := fmt.Sprintf("%s/batch_%d/%s", sh.name, batch, bk.name)
				b.Run("TB/"+prefix, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						bk.be.GemmTB(s, u, w)
					}
				})
				b.Run("TA/"+prefix, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						bk.be.GemmTA(g, d, u)
					}
				})
				b.Run("MM/"+prefix, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						bk.be.Gemm(x, d, w)
					}
				})
			}
		}
	}
}

// BenchmarkTable1Fast is BenchmarkTable1 with the fast tensor backend
// active at one worker — the single-core Table I wall-clock the fast
// backend is accountable for (BENCH_9.json pairs it with Table1).
func BenchmarkTable1Fast(b *testing.B) {
	prev := tensor.Use(tensor.NewFast(1))
	defer tensor.Use(prev)
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		if _, err := experiment.RunTable1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeBatchQPS measures the batched oracle serving path (64
// queries per ForwardBatch call) under each backend and reports
// queries/s — the serving-throughput figure BENCH_9.json records.
func BenchmarkServeBatchQPS(b *testing.B) {
	for _, bk := range sweepBackends() {
		b.Run(bk.name, func(b *testing.B) {
			prev := tensor.Use(bk.be)
			defer tensor.Use(prev)
			_, hw, ds := benchVictim(b)
			us := benchBatch(b, ds)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hw.ForwardBatch(us); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(us)*b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkTrainEpoch measures one epoch of batched single-layer SGD on
// 200 MNIST-like samples — the inner loop of every victim build.
func BenchmarkTrainEpoch(b *testing.B) {
	src := rng.New(3)
	ds, err := dataset.GenerateMNISTLike(src.Split("d"), 200, dataset.DefaultMNISTLikeConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := nn.TrainConfig{Epochs: 1, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nn.TrainNew(ds, nn.ActSoftmax, nn.LossCrossEntropy, cfg, src.Split("t")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMNISTGeneration measures synthetic digit rendering throughput.
func BenchmarkMNISTGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dataset.GenerateMNISTLike(rng.New(int64(i)), 100, dataset.DefaultMNISTLikeConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCIFARGeneration measures synthetic texture rendering
// throughput.
func BenchmarkCIFARGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dataset.GenerateCIFARLike(rng.New(int64(i)), 50, dataset.DefaultCIFARLikeConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDepth regenerates extension A4 (power-channel signal
// vs network depth — the paper's multi-layer future-work direction).
func BenchmarkAblationDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunDepthAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkAblationMasking regenerates extension A5 (dummy-row power
// masking countermeasure).
func BenchmarkAblationMasking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunMaskingAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkAblationTrace regenerates extension A6 (bit-serial trace
// extraction vs the paper's static channel).
func BenchmarkAblationTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.ResetVictimStore()
		res, err := experiment.RunTraceAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}
