// Power-profile attack (paper Case 1): the attacker can drive the
// crossbar's inputs and measure its supply current but never sees the
// outputs. Basis queries recover every weight column's 1-norm, which
// selects the pixel whose perturbation hurts the victim most.
//
// Run with:
//
//	go run ./examples/powerprofile
package main

import (
	"fmt"
	"log"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerprofile: ")
	src := rng.New(7)

	// Victim: a single-layer digit classifier deployed on a crossbar.
	train, test, err := dataset.Load(dataset.MNIST, src.Split("data"), dataset.LoadOptions{TrainN: 800, TestN: 300})
	if err != nil {
		log.Fatal(err)
	}
	victim, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 30, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true,
	}, src.Split("train"))
	if err != nil {
		log.Fatal(err)
	}
	hw, err := crossbar.NewNetwork(victim, crossbar.DefaultDeviceConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim clean test accuracy: %.3f\n", victim.Accuracy(test))

	// Attacker: N basis queries against the power meter, with 1%%
	// instrument noise.
	probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.Crossbar()), 0.01, src.Split("probe"))
	if err != nil {
		log.Fatal(err)
	}
	signals, err := probe.ExtractColumnSignals(1)
	if err != nil {
		log.Fatal(err)
	}
	target := tensor.ArgMax(signals)
	fmt.Printf("attacker recovered pixel importance profile in %d queries\n", probe.Queries())
	fmt.Printf("highest-1-norm pixel: %d (row %d, col %d)\n", target, target/test.Width, target%test.Width)

	// Attack: perturb that one pixel on every test image and compare with
	// a random-pixel baseline across strengths.
	oh := test.OneHot()
	evaluate := func(method attack.PixelMethod, eps float64, label string) float64 {
		asrc := src.Split(label)
		correct := 0
		for i := 0; i < test.Len(); i++ {
			adv, err := attack.SinglePixel(method, tensor.CloneVec(test.X.Row(i)), oh.Row(i), eps, signals, victim, asrc)
			if err != nil {
				log.Fatal(err)
			}
			pred, err := hw.Predict(adv)
			if err != nil {
				log.Fatal(err)
			}
			if pred == test.Labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(test.Len())
	}

	fmt.Println("\nsingle-pixel attack (accuracy under attack):")
	fmt.Println("strength  random-pixel  power-guided(+)  white-box-worst")
	for _, eps := range []float64{2, 5, 10} {
		fmt.Printf("%-8.0f  %-12.3f  %-15.3f  %.3f\n",
			eps,
			evaluate(attack.PixelRandom, eps, fmt.Sprintf("rp-%v", eps)),
			evaluate(attack.PixelNormPlus, eps, fmt.Sprintf("plus-%v", eps)),
			evaluate(attack.PixelWorst, eps, fmt.Sprintf("worst-%v", eps)),
		)
	}
	fmt.Println("\npower-guided attacks need zero output access — only a current probe.")
}
