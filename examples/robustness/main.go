// Robustness study (defender view): how do crossbar non-idealities —
// conductance quantization, programming noise, stuck-at faults, IR drop,
// and attacker-side measurement noise — affect (a) the deployed model's
// accuracy and (b) the power side channel's usefulness? This explores the
// future-work axis the paper's conclusion raises (non-ideal behaviour) and
// relates to the defenses surveyed in its related work.
//
// Run with:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("robustness: ")
	src := rng.New(21)

	train, test, err := dataset.Load(dataset.MNIST, src.Split("data"), dataset.LoadOptions{TrainN: 600, TestN: 200})
	if err != nil {
		log.Fatal(err)
	}
	victim, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 25, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true,
	}, src.Split("train"))
	if err != nil {
		log.Fatal(err)
	}
	trueNorms := victim.W.ColAbsSums()

	type scenario struct {
		name   string
		mutate func(*crossbar.DeviceConfig)
	}
	scenarios := []scenario{
		{"ideal analog", func(*crossbar.DeviceConfig) {}},
		{"16-level devices", func(c *crossbar.DeviceConfig) { c.Levels = 16 }},
		{"4-level devices", func(c *crossbar.DeviceConfig) { c.Levels = 4 }},
		{"5% program noise", func(c *crossbar.DeviceConfig) { c.ProgramNoiseStd = 0.05 }},
		{"2% stuck devices", func(c *crossbar.DeviceConfig) { c.StuckFraction = 0.02 }},
		{"IR drop α=0.2", func(c *crossbar.DeviceConfig) { c.IRDropAlpha = 0.2 }},
	}

	fmt.Println("non-ideality        hw accuracy   side-channel rank corr")
	for i, sc := range scenarios {
		cfg := crossbar.DefaultDeviceConfig()
		sc.mutate(&cfg)
		ssrc := src.SplitN("scenario", i)
		hw, err := crossbar.NewNetwork(victim, cfg, ssrc.Split("xbar"))
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for k := 0; k < test.Len(); k++ {
			pred, err := hw.Predict(test.X.Row(k))
			if err != nil {
				log.Fatal(err)
			}
			if pred == test.Labels[k] {
				correct++
			}
		}
		acc := float64(correct) / float64(test.Len())

		probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.Crossbar()), 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		signals, err := probe.ExtractColumnSignals(1)
		if err != nil {
			log.Fatal(err)
		}
		rho, err := stats.Spearman(signals, trueNorms)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %-12.3f  %.3f\n", sc.name, acc, rho)
	}

	fmt.Println("\ntakeaway: mild non-idealities barely blunt the power channel —")
	fmt.Println("the column-norm ranking survives quantization and faults that")
	fmt.Println("already cost the deployed model accuracy.")
}
