// Defenses walkthrough: two countermeasures against the power
// side-channel and evasion attacks of the paper, evaluated on the same
// deployed victim — (1) DetectX-style current-signature detection of
// adversarial inputs (the defensive counterpart the paper cites), and
// (2) dummy-row power masking, which removes the column-1-norm leak
// entirely at a measurable static-power cost.
//
// Run with:
//
//	go run ./examples/defenses
package main

import (
	"fmt"
	"log"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/detect"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("defenses: ")
	src := rng.New(33)

	train, test, err := dataset.Load(dataset.MNIST, src.Split("data"), dataset.LoadOptions{TrainN: 600, TestN: 250})
	if err != nil {
		log.Fatal(err)
	}
	victim, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 25, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true,
	}, src.Split("train"))
	if err != nil {
		log.Fatal(err)
	}
	hw, err := crossbar.NewNetwork(victim, crossbar.DefaultDeviceConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// --- Defense 1: current-signature detection ------------------------
	det, err := detect.Fit(hw, train, detect.Config{Threshold: 3})
	if err != nil {
		log.Fatal(err)
	}
	oh := test.OneHot()
	fmt.Println("Defense 1: DetectX-style current-signature detector")
	fmt.Println("  FGSM eps   detection rate   false positives")
	for _, eps := range []float64{0.05, 0.2, 0.5} {
		res, err := detect.Evaluate(det, hw, test, func(i int, u []float64) []float64 {
			adv, err := attack.FGSM(victim, u, oh.Row(i), eps)
			if err != nil {
				log.Fatal(err)
			}
			return adv
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9.2f  %-15.3f  %.3f\n", eps, res.DetectionRate, res.FalsePositiveRate)
	}

	// --- Defense 2: dummy-row power masking ----------------------------
	maskCfg := crossbar.DefaultDeviceConfig()
	maskCfg.PowerMasking = true
	masked, err := crossbar.NewNetwork(victim, maskCfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	trueNorms := victim.W.ColAbsSums()
	rank := func(n *crossbar.Network) float64 {
		probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(n.Crossbar()), 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		signals, err := probe.ExtractColumnSignals(1)
		if err != nil {
			log.Fatal(err)
		}
		rho, err := stats.Spearman(signals, trueNorms)
		if err != nil {
			return 0 // constant signals: the attacker learns nothing
		}
		return rho
	}
	fmt.Println("\nDefense 2: dummy-row power masking")
	fmt.Printf("  plain array:  side-channel rank corr %.3f\n", rank(hw))
	fmt.Printf("  masked array: side-channel rank corr %.3f\n", rank(masked))
	fmt.Printf("  masking power overhead: %.0f%% of functional array power\n",
		100*masked.Crossbar().MaskOverheadFraction())

	// Masking is functionally transparent.
	agree := 0
	for i := 0; i < test.Len(); i++ {
		a, err := hw.Predict(test.X.Row(i))
		if err != nil {
			log.Fatal(err)
		}
		b, err := masked.Predict(test.X.Row(i))
		if err != nil {
			log.Fatal(err)
		}
		if a == b {
			agree++
		}
	}
	fmt.Printf("  prediction agreement plain vs masked: %d/%d\n", agree, test.Len())
}
