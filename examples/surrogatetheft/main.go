// Surrogate theft with power information (paper Case 2): the attacker
// queries the crossbar-hosted oracle for outputs AND measures power, then
// trains a surrogate with the joint loss L = L_out + λ·L_power (Eq. 9).
// FGSM examples crafted on the surrogate transfer to the oracle more
// effectively than without the power term at moderate query budgets.
//
// Run with:
//
//	go run ./examples/surrogatetheft
package main

import (
	"fmt"
	"log"

	"xbarsec/internal/attack"
	"xbarsec/internal/crossbar"
	"xbarsec/internal/dataset"
	"xbarsec/internal/nn"
	"xbarsec/internal/oracle"
	"xbarsec/internal/rng"
	"xbarsec/internal/surrogate"
	"xbarsec/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surrogatetheft: ")
	src := rng.New(11)

	train, test, err := dataset.Load(dataset.MNIST, src.Split("data"), dataset.LoadOptions{TrainN: 900, TestN: 300})
	if err != nil {
		log.Fatal(err)
	}
	victim, _, err := nn.TrainNew(train, nn.ActLinear, nn.LossMSE, nn.TrainConfig{
		Epochs: 30, BatchSize: 32, LearningRate: 0.05, Momentum: 0.9, ZeroInit: true,
	}, src.Split("train"))
	if err != nil {
		log.Fatal(err)
	}
	hw, err := crossbar.NewNetwork(victim, crossbar.DefaultDeviceConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	orc, err := oracle.New(hw, oracle.Config{Mode: oracle.RawOutput, MeasurePower: true})
	if err != nil {
		log.Fatal(err)
	}
	clean, err := orc.AccuracyOn(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle clean test accuracy: %.3f\n\n", clean)

	const queries = 200
	qs, err := oracle.Collect(orc, train, queries, src.Split("collect"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d queries (outputs + power)\n\n", qs.Len())

	oh := test.OneHot()
	evaluate := func(model *surrogate.Model) (surAcc, advAcc float64) {
		surAcc = model.Accuracy(test.X, test.Labels)
		correct := 0
		for i := 0; i < test.Len(); i++ {
			adv, err := attack.FGSM(model.Net, tensor.CloneVec(test.X.Row(i)), oh.Row(i), 0.1)
			if err != nil {
				log.Fatal(err)
			}
			pred, err := hw.Predict(adv)
			if err != nil {
				log.Fatal(err)
			}
			if pred == test.Labels[i] {
				correct++
			}
		}
		return surAcc, float64(correct) / float64(test.Len())
	}

	fmt.Println("λ (power weight)  surrogate acc  oracle acc under FGSM(0.1)")
	for _, lambda := range []float64{0, 0.002, 0.004, 0.01} {
		cfg := surrogate.DefaultConfig()
		cfg.Lambda = lambda
		model, err := surrogate.Train(qs, cfg, src.SplitN("fit", int(lambda*10000)))
		if err != nil {
			log.Fatal(err)
		}
		surAcc, advAcc := evaluate(model)
		fmt.Printf("%-16.3f  %-13.3f  %.3f\n", lambda, surAcc, advAcc)
	}

	// The algebraic bound: with Q >= N raw queries the weights fall out
	// of a pseudoinverse and power adds nothing (paper §IV).
	big, err := oracle.Collect(orc, train, train.Len(), src.Split("big"))
	if err != nil {
		log.Fatal(err)
	}
	exact, err := surrogate.AlgebraicExtract(big)
	if err != nil {
		log.Fatal(err)
	}
	diff := exact.W.Clone()
	diff.SubMatrix(victim.W)
	fmt.Printf("\nwith %d >= %d queries, W = U†Ŷ recovers the weights exactly (max error %.2e)\n",
		big.Len(), victim.Inputs(), diff.MaxAbs())
}
