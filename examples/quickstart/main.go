// Quickstart: program a tiny network onto a simulated NVM crossbar, run
// an inference, and see what the power side channel leaks.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xbarsec/internal/crossbar"
	"xbarsec/internal/nn"
	"xbarsec/internal/rng"
	"xbarsec/internal/sidechannel"
	"xbarsec/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A 3-class, 6-input single-layer network with hand-picked weights.
	net, err := nn.NewNetwork(3, 6, nn.ActSoftmax, nn.LossCrossEntropy)
	if err != nil {
		log.Fatal(err)
	}
	weights := [][]float64{
		{0.9, -0.2, 0.1, 0.0, 0.3, -0.1},
		{-0.4, 0.8, -0.3, 0.2, 0.0, 0.1},
		{0.1, -0.1, 0.7, -0.6, 0.2, 0.4},
	}
	for i, row := range weights {
		net.W.SetRow(i, row)
	}

	// Program it onto an ideal crossbar (ReRAM-like conductance window).
	cfg := crossbar.DefaultDeviceConfig()
	hw, err := crossbar.NewNetwork(net, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Inference: the analog array computes f(Wu) via Ohm's and
	// Kirchhoff's laws.
	u := []float64{0.8, 0.1, 0.0, 0.4, 0.9, 0.2}
	software := net.Forward(u)
	hardware, err := hw.Forward(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input:            ", u)
	fmt.Printf("software output:   %.4f\n", software)
	fmt.Printf("crossbar output:   %.4f\n", hardware)

	// The side channel: total supply current reveals column 1-norms.
	probe, err := sidechannel.NewProbe(sidechannel.MeterFromCrossbar(hw.Crossbar()), 0, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	signals, err := probe.ExtractColumnSignals(1)
	if err != nil {
		log.Fatal(err)
	}
	norms := sidechannel.CalibrateColumnNorms(signals, cfg, net.Outputs(), hw.Crossbar().Scale())
	truth := net.W.ColAbsSums()
	fmt.Println("\npower side channel (basis queries):")
	fmt.Printf("  extracted column 1-norms: %.4f\n", norms)
	fmt.Printf("  true column 1-norms:      %.4f\n", truth)
	fmt.Printf("  most vulnerable input:    %d (queries used: %d)\n",
		tensor.ArgMax(norms), probe.Queries())
}
