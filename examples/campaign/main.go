// Campaign: host a victim network behind the attack-campaign service's
// HTTP API, hammer it from several concurrent attacker sessions through
// the Go client SDK — including the batched query path that serves a
// whole input slice in one round trip — and run a cached
// extraction/evasion campaign against it. The multi-tenant serving
// layer of this repository, driven exactly as a remote attacker would
// drive it.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"xbarsec/api"
	"xbarsec/client"
	"xbarsec/internal/dataset"
	"xbarsec/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	ctx := context.Background()

	// Train a demo victim (synthetic MNIST-like, linear head — the
	// paper's Section IV configuration), register it with a service, and
	// expose the service over a real HTTP listener.
	victim, err := service.TrainVictim(service.VictimSpec{
		Kind: dataset.MNIST, Seed: 1, TrainN: 300, TestN: 100, Epochs: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := service.New(service.Config{Seed: 1})
	defer svc.Close()
	if err := svc.Register(victim); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	// The SDK negotiates the protocol version on first use and then
	// speaks typed api structs end to end.
	c, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	v, err := c.Version(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server speaks protocol %s (%d experiments registered)\n", v.Version, v.Experiments)
	fmt.Printf("victim %q registered: %d inputs, %d classes\n",
		victim.Name(), victim.Inputs(), victim.Outputs())

	// Eight attackers share the victim. Each gets its own session — its
	// own disclosure mode, query budget and noise stream — and submits
	// its queries as ONE batched round trip; the service coalesces all
	// in-flight work into batched array reads. Budget admission stays
	// exact: a 40-input batch against a budget of 25 yields exactly 25
	// responses, the rest carry the typed budget_exhausted error.
	const attackers = 8
	var wg sync.WaitGroup
	spent := make([]int, attackers)
	test := victim.Test()
	for a := 0; a < attackers; a++ {
		sess, err := c.OpenSession(ctx, api.OpenSessionRequest{
			Victim: "mnist", Mode: api.ModeRawOutput, MeasurePower: true, Budget: 25,
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(a int, sess *client.Session) {
			defer wg.Done()
			inputs := make([][]float64, 40)
			for i := range inputs {
				inputs[i], _ = test.Sample(i % test.Len())
			}
			batch, err := sess.QueryBatch(ctx, inputs)
			if err != nil {
				log.Fatal(err)
			}
			spent[a] = batch.Queries
		}(a, sess)
	}
	wg.Wait()
	fmt.Printf("per-session queries admitted (budget 25): %v\n", spent)

	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coalescing: %d queries served in %d batched reads (largest batch %d)\n",
		st.Victims[0].Requests, st.Victims[0].Batches, st.Victims[0].MaxBatch)

	// A campaign job: collect 150 raw-output+power queries, train a
	// power-regularized surrogate (λ = 0.004), attack the victim with
	// surrogate-crafted FGSM. Deterministic given its spec — rerunning
	// it is a server-side cache hit.
	spec := api.CampaignRequest{
		Victim: "mnist", Mode: api.ModeRawOutput, Seed: 7,
		Queries: 150, Lambda: 0.004,
	}
	res, err := c.RunCampaign(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: clean %.3f -> adversarial %.3f (surrogate acc %.3f, %d oracle queries)\n",
		res.CleanAccuracy, res.AdvAccuracy, res.SurrogateAccuracy, res.QueriesCharged)
	again, err := c.RunCampaign(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay served from cache: %v (bit-identical: %v)\n",
		again.Cached, again.AdvAccuracy == res.AdvAccuracy)
}
