// Campaign: host a victim network behind the attack-campaign service,
// hammer it from several concurrent attacker sessions, and run a cached
// extraction/evasion campaign against it — the multi-tenant serving
// layer of this repository in one file.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"sync"

	"xbarsec/internal/dataset"
	"xbarsec/internal/oracle"
	"xbarsec/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")

	// Train a demo victim (synthetic MNIST-like, linear head — the
	// paper's Section IV configuration) and register it with a service.
	victim, err := service.TrainVictim(service.VictimSpec{
		Kind: dataset.MNIST, Seed: 1, TrainN: 300, TestN: 100, Epochs: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := service.New(service.Config{Seed: 1})
	defer svc.Close()
	if err := svc.Register(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim %q registered: %d inputs, %d classes\n",
		victim.Name(), victim.Inputs(), victim.Outputs())

	// Eight attackers share the victim. Each gets its own session — its
	// own disclosure mode, query budget and noise stream — while the
	// service coalesces their in-flight queries into batched array reads.
	const attackers = 8
	var wg sync.WaitGroup
	spent := make([]int, attackers)
	for a := 0; a < attackers; a++ {
		sess, err := svc.OpenSession("mnist", service.SessionConfig{
			Mode: oracle.RawOutput, MeasurePower: true, Budget: 25,
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(a int, sess *service.Session) {
			defer wg.Done()
			// Hammer past the budget: exactly 25 queries are admitted.
			test := victim.Test()
			for i := 0; i < 40; i++ {
				u, _ := test.Sample(i % test.Len())
				if _, err := sess.Query(u); err != nil {
					break
				}
			}
			spent[a] = sess.Queries()
		}(a, sess)
	}
	wg.Wait()
	fmt.Printf("per-session queries admitted (budget 25): %v\n", spent)

	st := svc.Stats()
	fmt.Printf("coalescing: %d queries served in %d batched reads (largest batch %d)\n",
		st.Victims[0].Requests, st.Victims[0].Batches, st.Victims[0].MaxBatch)

	// A campaign job: collect 150 raw-output+power queries, train a
	// power-regularized surrogate (λ = 0.004), attack the victim with
	// surrogate-crafted FGSM. Deterministic given its spec — rerunning
	// it is a cache hit.
	spec := service.CampaignSpec{
		Victim: "mnist", Mode: oracle.RawOutput, Seed: 7,
		Queries: 150, Lambda: 0.004,
	}
	res, err := svc.RunCampaign(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: clean %.3f -> adversarial %.3f (surrogate acc %.3f, %d oracle queries)\n",
		res.CleanAccuracy, res.AdvAccuracy, res.SurrogateAccuracy, res.QueriesCharged)
	again, err := svc.RunCampaign(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay served from cache: %v (bit-identical: %v)\n",
		again.Cached, again.AdvAccuracy == res.AdvAccuracy)
}
