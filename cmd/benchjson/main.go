// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_*.json format the repo uses to record its performance trajectory:
// one entry per benchmark with its iteration count and ns/op. Lines that
// are not benchmark results are skipped, so several -bench runs can be
// concatenated:
//
//	{ go test -run XXX -bench 'Gemm' -benchtime 200x .; \
//	  go test -run XXX -bench 'Table1$' -benchtime 3x .; } \
//	  | go run ./cmd/benchjson > BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement. Metrics holds any custom
// b.ReportMetric values the benchmark emitted beyond ns/op (e.g.
// "queries/s" from the batched-serving benchmark) — additive, so the
// schema tag is unchanged.
type Entry struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	MsPerOp float64            `json:"ms_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_*.json schema.
type Report struct {
	Schema     string  `json:"schema"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep := Report{Schema: "xbarsec-bench/v1"}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shape: BenchmarkName[-P] N X ns/op [more metrics...]
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		name = strings.TrimPrefix(name, "Benchmark")
		for i := 2; i < len(fields); i++ {
			if fields[i] != "ns/op" {
				continue
			}
			ns, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				break
			}
			iters, _ := strconv.ParseInt(fields[1], 10, 64)
			e := Entry{Name: name, Iters: iters, NsPerOp: ns, MsPerOp: ns / 1e6}
			// Remaining fields come in (value, unit) pairs — custom
			// b.ReportMetric output (B/op and allocs/op too, when -benchmem).
			for j := i + 2; j < len(fields); j += 2 {
				v, err := strconv.ParseFloat(fields[j-1], 64)
				if err != nil {
					continue
				}
				if e.Metrics == nil {
					e.Metrics = make(map[string]float64)
				}
				e.Metrics[fields[j]] = v
			}
			rep.Benchmarks = append(rep.Benchmarks, e)
			break
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
