// Command xbarattack regenerates every table and figure of the paper
// "Enhancing Adversarial Attacks on Single-Layer NVM Crossbar-Based Neural
// Networks with Power Consumption Information" (Merkel, SOCC 2022) from
// the simulation stack in this repository.
//
// Usage:
//
//	xbarattack [flags] <command>
//
// Commands (every registered experiment is a command; `xbarattack list`
// prints the registry):
//
//	table1             Table I correlation coefficients
//	fig3               Figure 3 sensitivity / 1-norm heatmaps
//	fig4               Figure 4 single-pixel attack sweeps
//	fig5               Figure 5 surrogate black-box attack sweeps
//	ablate-noise       extraction noise/quantization ablation (A1)
//	ablate-search      query-efficient 1-norm search ablation (A2)
//	ablate-multipixel  multi-pixel attack ablation (A3)
//	ablate-depth       network-depth extension (A4)
//	ablate-masking     power-masking defense extension (A5)
//	ablate-trace       bit-serial trace extraction extension (A6)
//	calibrate          victim accuracies per configuration
//	ablations          all six ablations/extensions, in order
//	campaign           query-budget x lambda campaign sweep through the
//	                   attack-campaign service layer (internal/service)
//	cluster            print a server's cluster membership and routing
//	                   counters (remote only: requires -server)
//	list               registered experiments with their grid axes
//	all                every paper artifact, in paper order ("all"
//	                   excludes campaign, which is a service-layer demo
//	                   rather than a paper artifact)
//
// Flags:
//
//	-seed     int     experiment seed (default 1)
//	-scale    float   workload scale in (0,1]; 1 = paper-sized (default 0.25)
//	-runs     int     override repetition count (0 = scaled default)
//	-workers  int     workers per fan-out level (0 = all CPUs, 1 =
//	                  fully serial; default 0). Grids nest fan-outs
//	                  (e.g. configs x samples), so total goroutines can
//	                  reach workers^2. Results are bit-identical for
//	                  every worker count at a fixed seed.
//	-data     string  directory with real MNIST/CIFAR files (optional)
//	-out      string  directory for CSV/PGM exports (optional)
//	-format   string  output format: table (human tables/plots, the
//	                  default), csv (every result table as CSV), or
//	                  json (the full structured result)
//	-fast             compute with the fast tensor backend (SIMD +
//	                  unrolled GEMM kernels). Numbers agree with the
//	                  default bit-exact reference backend only within
//	                  the documented tolerance (see internal/tensor),
//	                  so paper artifacts regenerate byte-identically
//	                  only without -fast
//	-server   string  xbarserve base URL; when set, experiments, list
//	                  and campaign run remotely through the client SDK
//	                  (xbarsec/client) instead of in-process. The server
//	                  supplies -workers and -data; -format csv and -out
//	                  need local result objects and are refused. Remote
//	                  output is byte-identical to the in-process run at
//	                  the same seeds (for campaign: against a server
//	                  hosting the matching victim, e.g.
//	                  `xbarserve -train-n 200 -test-n 100 -seed 1` for
//	                  the default -scale 0.25).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"xbarsec/api"
	"xbarsec/client"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment"
	"xbarsec/internal/experiment/engine"
	"xbarsec/internal/oracle"
	"xbarsec/internal/report"
	"xbarsec/internal/service"
	"xbarsec/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xbarattack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xbarattack", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	scale := fs.Float64("scale", 0.25, "workload scale in (0,1]; 1 = paper-sized sweeps")
	runs := fs.Int("runs", 0, "override repetition count (0 = scaled default)")
	workers := fs.Int("workers", 0, "workers per fan-out level (0 = all CPUs, 1 = fully serial); nested sweeps may run up to workers^2 goroutines; results are seed-deterministic at any count")
	dataDir := fs.String("data", "", "directory with real MNIST/CIFAR-10 files")
	outDir := fs.String("out", "", "directory for CSV/PGM exports")
	format := fs.String("format", "table", "output format: table|csv|json")
	server := fs.String("server", "", "xbarserve base URL: run remotely through the client SDK")
	fast := fs.Bool("fast", false, "use the fast tensor backend (tolerance-equal to the bit-exact default; see internal/tensor)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fast {
		// Selected once, before any work launches — the backend is part of
		// the run's configuration (never ambient state; see tensor.Use).
		tensor.Use(tensor.NewFast(*workers))
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one command, got %d", fs.NArg())
	}
	switch *format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want table|csv|json)", *format)
	}
	opts := experiment.Options{Seed: *seed, Scale: *scale, Runs: *runs, Workers: *workers, DataDir: *dataDir}

	cmd := fs.Arg(0)
	if *server != "" {
		return runRemote(*server, cmd, opts, *format, *outDir)
	}
	runNames := func(names []string) error {
		for _, name := range names {
			exp, ok := engine.Lookup(name)
			if !ok {
				return fmt.Errorf("experiment %q not registered", name)
			}
			if err := runExperiment(exp, opts, *format, *outDir); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	switch cmd {
	case "all":
		return runNames(experiment.PaperOrder())
	case "ablations":
		return runNames(experiment.AblationNames())
	case "campaign":
		return runCampaign(opts, *outDir, nil)
	case "cluster":
		return fmt.Errorf("the cluster command is remote-only: pass -server")
	case "list":
		return runList(opts)
	}
	if exp, ok := engine.Lookup(cmd); ok {
		return runExperiment(exp, opts, *format, *outDir)
	}
	return fmt.Errorf("unknown command %q (want %s|ablations|campaign|list|all)",
		cmd, strings.Join(engine.Names(), "|"))
}

// runRemote dispatches a command against a live xbarserve through the
// client SDK. The server performs the compute (with its own -workers
// and -data); the output is byte-identical to the in-process run at
// the same seeds.
func runRemote(server, cmd string, opts experiment.Options, format, outDir string) error {
	c, err := client.New(server)
	if err != nil {
		return err
	}
	ctx := context.Background()
	switch cmd {
	case "all":
		return runNamesRemote(ctx, c, experiment.PaperOrder(), opts, format, outDir)
	case "ablations":
		return runNamesRemote(ctx, c, experiment.AblationNames(), opts, format, outDir)
	case "campaign":
		return runCampaign(opts, outDir, c)
	case "cluster":
		return runClusterRemote(ctx, c)
	case "list":
		return runListRemote(ctx, c)
	}
	return runExperimentRemote(ctx, c, cmd, opts, format, outDir)
}

func runNamesRemote(ctx context.Context, c *client.Client, names []string, opts experiment.Options, format, outDir string) error {
	for _, name := range names {
		if err := runExperimentRemote(ctx, c, name, opts, format, outDir); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// runExperimentRemote runs one registry experiment server-side
// (?wait=1: one round trip, results cached by spec) and presents it
// exactly as the local path would: Render for table, the structured
// JSON for json. CSV and -out need local result objects, so they are
// refused rather than silently degraded.
func runExperimentRemote(ctx context.Context, c *client.Client, name string, opts experiment.Options, format, outDir string) error {
	if format == "csv" {
		return fmt.Errorf("-format csv is not available with -server (use table or json)")
	}
	if outDir != "" {
		return fmt.Errorf("-out is not available with -server (exports need local result objects)")
	}
	res, err := c.RunExperiment(ctx, api.ExperimentSpec{
		Name: name, Seed: opts.Seed, Scale: opts.Scale, Runs: opts.Runs,
	})
	if err != nil {
		return err
	}
	switch format {
	case "table":
		fmt.Println(res.Render)
	case "json":
		// The wire compacts the embedded raw result; re-indent to the
		// exact bytes the local path's WriteJSON emits.
		var buf bytes.Buffer
		if err := json.Indent(&buf, res.Result, "", "  "); err != nil {
			return err
		}
		buf.WriteByte('\n')
		if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// runListRemote prints the server's experiment registry in the same
// table the local list command renders.
func runListRemote(ctx context.Context, c *client.Client) error {
	infos, err := c.Experiments(ctx)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:  "Registered experiments (grid axes at the current -scale/-runs)",
		Header: []string{"name", "title", "axes"},
	}
	for _, info := range infos {
		var dims []string
		for _, ax := range info.Axes {
			dims = append(dims, fmt.Sprintf("%s(%d)", ax.Name, len(ax.Values)))
		}
		tbl.AddRow(info.Name, info.Title, strings.Join(dims, " x "))
	}
	fmt.Println(tbl.String())
	return nil
}

// runClusterRemote prints a server's cluster membership plus the
// routing/provenance counters from its stats snapshot — the operator's
// one-look answer to "which node owns what, and is peer fetch working".
func runClusterRemote(ctx context.Context, c *client.Client) error {
	info, err := c.Cluster(ctx)
	if err != nil {
		return err
	}
	if !info.Enabled {
		fmt.Println("single-node server (no cluster configured)")
		return nil
	}
	tbl := &report.Table{
		Title:  fmt.Sprintf("Cluster ring %.12s (%d vnodes, seed %d)", info.RingHash, info.VNodes, info.RingSeed),
		Header: []string{"node", "url", "self"},
	}
	for _, m := range info.Members {
		tbl.AddRow(m.ID, m.URL, fmt.Sprint(m.Self))
	}
	fmt.Println(tbl.String())
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("node %s: %d redirects issued, %d peer fetches (%d verified, %d rejected), %d provenance records\n",
		st.NodeID, st.RedirectsIssued, st.PeerFetches, st.PeerFetchVerified, st.PeerFetchRejected, st.ProvenanceRecords)
	return nil
}

// runExperiment dispatches one registry entry and presents its result
// in the requested format, exporting artifact files when -out is set.
func runExperiment(exp engine.Experiment, opts experiment.Options, format, outDir string) error {
	res, err := exp.Run(opts)
	if err != nil {
		return err
	}
	switch format {
	case "table":
		fmt.Println(res.Render())
	case "csv":
		for i, tbl := range res.Tables() {
			if i > 0 {
				fmt.Println()
			}
			if err := tbl.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
	case "json":
		if err := res.WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if outDir == "" {
		return nil
	}
	if exporter, ok := res.(interface {
		Export(dir string) ([]string, error)
	}); ok {
		written, err := exporter.Export(outDir)
		// With a machine-readable format on stdout, export notices go
		// to stderr so the document stays parseable.
		notices := os.Stdout
		if format != "table" {
			notices = os.Stderr
		}
		for _, path := range written {
			fmt.Fprintln(notices, "wrote", path)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// runList prints the experiment registry with each grid's axes at the
// current options.
func runList(opts experiment.Options) error {
	tbl := &report.Table{
		Title:  "Registered experiments (grid axes at the current -scale/-runs)",
		Header: []string{"name", "title", "axes"},
	}
	for _, exp := range engine.All() {
		var dims []string
		if exp.Axes != nil {
			for _, ax := range exp.Axes(opts) {
				dims = append(dims, fmt.Sprintf("%s(%d)", ax.Name, len(ax.Values)))
			}
		}
		tbl.AddRow(exp.Name, exp.Title, strings.Join(dims, " x "))
	}
	fmt.Println(tbl.String())
	return nil
}

// runCampaign drives the service layer end to end from the CLI: one
// demo victim, a grid of (query budget x lambda) campaigns served
// through the artifact cache, rendered like a Figure 5 panel. The sweep
// is bit-identical at any -workers value. With a non-nil client the
// same sweep runs against a live xbarserve through the SDK — the
// output is byte-identical to the in-process run when the server hosts
// the matching "mnist" victim (same seed and split sizes) and starts
// fresh (the stats footer counts server-lifetime campaigns).
func runCampaign(opts experiment.Options, outDir string, remote *client.Client) error {
	scale := opts.Scale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	scaled := func(n, minimum int) int {
		v := int(float64(n) * scale)
		if v < minimum {
			v = minimum
		}
		return v
	}
	ctx := context.Background()
	// One sweep body, two transports: a local service's Go API or a
	// remote server through the SDK. service.CampaignResult and
	// service.Stats are aliases of the api wire types, so both paths
	// produce identical values by construction.
	var (
		runCell  func(q int, lambda float64) (*api.CampaignResult, error)
		getStats func() (api.Stats, error)
	)
	if remote != nil {
		runCell = func(q int, lambda float64) (*api.CampaignResult, error) {
			return remote.RunCampaign(ctx, api.CampaignRequest{
				Victim: "mnist", Mode: api.ModeRawOutput, Seed: opts.Seed,
				Queries: q, Lambda: lambda,
			})
		}
		getStats = func() (api.Stats, error) { return remote.Stats(ctx) }
	} else {
		svc := service.New(service.Config{Seed: opts.Seed, Workers: opts.Workers})
		defer svc.Close()
		victim, err := service.TrainVictim(service.VictimSpec{
			Name: "mnist", Kind: dataset.MNIST, Seed: opts.Seed,
			TrainN: scaled(600, 200), TestN: scaled(200, 100),
			DataDir: opts.DataDir,
		})
		if err != nil {
			return err
		}
		if err := svc.Register(victim); err != nil {
			return err
		}
		runCell = func(q int, lambda float64) (*api.CampaignResult, error) {
			return svc.RunCampaign(service.CampaignSpec{
				Victim: "mnist", Mode: oracle.RawOutput, Seed: opts.Seed,
				Queries: q, Lambda: lambda,
			})
		}
		getStats = func() (api.Stats, error) { return svc.Stats(), nil }
	}
	queries := []int{scaled(50, 20), scaled(200, 50), scaled(600, 150)}
	lambdas := []float64{0, 0.004, 0.01}
	tbl := &report.Table{
		Title:  "Campaign sweep: oracle adv. accuracy under surrogate FGSM (victim mnist, raw-output)",
		Header: []string{"queries", "surrogate acc (λ=0)"},
	}
	for _, l := range lambdas {
		tbl.Header = append(tbl.Header, fmt.Sprintf("adv acc λ=%g", l))
	}
	for _, q := range queries {
		var row []string
		var surAcc float64
		advs := make([]string, 0, len(lambdas))
		for _, l := range lambdas {
			res, err := runCell(q, l)
			if err != nil {
				return err
			}
			if l == 0 {
				surAcc = res.SurrogateAccuracy
			}
			advs = append(advs, report.F(res.AdvAccuracy, 3))
		}
		row = append(row, fmt.Sprintf("%d", q), report.F(surAcc, 3))
		row = append(row, advs...)
		tbl.AddRow(row...)
	}
	fmt.Println(tbl.String())
	st, err := getStats()
	if err != nil {
		return err
	}
	fmt.Printf("campaigns served: %d (cache hits %d, misses %d)\n\n",
		st.Campaigns, st.CacheHits, st.CacheMisses)
	if outDir == "" {
		return nil
	}
	path := filepath.Join(outDir, "campaign_sweep.csv")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tbl.WriteCSV(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
