// Command xbarattack regenerates every table and figure of the paper
// "Enhancing Adversarial Attacks on Single-Layer NVM Crossbar-Based Neural
// Networks with Power Consumption Information" (Merkel, SOCC 2022) from
// the simulation stack in this repository.
//
// Usage:
//
//	xbarattack [flags] <command>
//
// Commands:
//
//	table1     Table I correlation coefficients
//	fig3       Figure 3 sensitivity / 1-norm heatmaps
//	fig4       Figure 4 single-pixel attack sweeps
//	fig5       Figure 5 surrogate black-box attack sweeps
//	ablations  extraction-noise, search and multi-pixel ablations
//	calibrate  victim accuracies per configuration
//	campaign   query-budget x lambda campaign sweep through the
//	           attack-campaign service layer (internal/service)
//	all        everything above, in paper order ("all" excludes
//	           campaign, which is a service-layer demo rather than a
//	           paper artifact)
//
// Flags:
//
//	-seed     int     experiment seed (default 1)
//	-scale    float   workload scale in (0,1]; 1 = paper-sized (default 0.25)
//	-runs     int     override repetition count (0 = scaled default)
//	-workers  int     workers per fan-out level (0 = all CPUs, 1 =
//	                  fully serial; default 0). Runners nest fan-outs
//	                  (e.g. configs x samples), so total goroutines can
//	                  reach workers^2. Results are bit-identical for
//	                  every worker count at a fixed seed.
//	-data     string  directory with real MNIST/CIFAR files (optional)
//	-out      string  directory for CSV exports (optional)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment"
	"xbarsec/internal/oracle"
	"xbarsec/internal/report"
	"xbarsec/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xbarattack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xbarattack", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	scale := fs.Float64("scale", 0.25, "workload scale in (0,1]; 1 = paper-sized sweeps")
	runs := fs.Int("runs", 0, "override repetition count (0 = scaled default)")
	workers := fs.Int("workers", 0, "workers per fan-out level (0 = all CPUs, 1 = fully serial); nested sweeps may run up to workers^2 goroutines; results are seed-deterministic at any count")
	dataDir := fs.String("data", "", "directory with real MNIST/CIFAR-10 files")
	outDir := fs.String("out", "", "directory for CSV exports")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one command, got %d", fs.NArg())
	}
	opts := experiment.Options{Seed: *seed, Scale: *scale, Runs: *runs, Workers: *workers, DataDir: *dataDir}

	cmd := fs.Arg(0)
	commands := map[string]func(experiment.Options, string) error{
		"table1":    runTable1,
		"fig3":      runFig3,
		"fig4":      runFig4,
		"fig5":      runFig5,
		"ablations": runAblations,
		"calibrate": runCalibrate,
		"campaign":  runCampaign,
	}
	if cmd == "all" {
		for _, name := range []string{"calibrate", "table1", "fig3", "fig4", "fig5", "ablations"} {
			if err := commands[name](opts, *outDir); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := commands[cmd]
	if !ok {
		return fmt.Errorf("unknown command %q (want table1|fig3|fig4|fig5|ablations|calibrate|campaign|all)", cmd)
	}
	return fn(opts, *outDir)
}

func runTable1(opts experiment.Options, _ string) error {
	res, err := experiment.RunTable1(opts)
	if err != nil {
		return err
	}
	fmt.Println(res.Render().String())
	return nil
}

func runFig3(opts experiment.Options, outDir string) error {
	res, err := experiment.RunFig3(opts)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if outDir == "" {
		return nil
	}
	for _, panel := range res.Panels {
		for _, m := range []struct {
			suffix string
			values []float64
		}{
			{"sensitivity", panel.Sensitivity},
			{"norms", panel.Norms},
		} {
			path := filepath.Join(outDir, "fig3_"+sanitize(panel.Config.Name())+"_"+m.suffix+".pgm")
			if err := writePGMFile(path, m.values, panel.Width, panel.Height); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}
	return nil
}

func writePGMFile(path string, values []float64, w, h int) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WritePGM(f, values, w, h); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func runFig4(opts experiment.Options, outDir string) error {
	res, err := experiment.RunFig4(opts)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	// Iterate panels in sorted-name order: ranging over the series map
	// directly would print in Go's randomized map order, breaking the
	// run-to-run reproducibility the engine guarantees.
	series := res.Series()
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		plot := &report.LinePlot{
			Title:  "Figure 4 [" + name + "]",
			XLabel: "attack strength", YLabel: "test accuracy",
			Series: series[name],
		}
		fmt.Println(plot.String())
	}
	if outDir == "" {
		return nil
	}
	for _, name := range names {
		path := filepath.Join(outDir, "fig4_"+sanitize(name)+".csv")
		if err := writeCSV(path, "strength", series[name]); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func runFig5(opts experiment.Options, _ string) error {
	res, err := experiment.RunFig5(experiment.Fig5Options{Options: opts})
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func runAblations(opts experiment.Options, _ string) error {
	noise, err := experiment.RunNoiseAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(noise.Render().String())
	search, err := experiment.RunSearchAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(search.Render().String())
	multi, err := experiment.RunMultiPixelAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(multi.Render().String())
	depth, err := experiment.RunDepthAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(depth.Render().String())
	masking, err := experiment.RunMaskingAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(masking.Render().String())
	traces, err := experiment.RunTraceAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(traces.Render().String())
	return nil
}

// runCampaign drives the service layer end to end from the CLI: one
// demo victim, a grid of (query budget x lambda) campaigns served
// through the artifact cache, rendered like a Figure 5 panel. The sweep
// is bit-identical at any -workers value.
func runCampaign(opts experiment.Options, outDir string) error {
	scale := opts.Scale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	scaled := func(n, minimum int) int {
		v := int(float64(n) * scale)
		if v < minimum {
			v = minimum
		}
		return v
	}
	svc := service.New(service.Config{Seed: opts.Seed, Workers: opts.Workers})
	defer svc.Close()
	victim, err := service.TrainVictim(service.VictimSpec{
		Name: "mnist", Kind: dataset.MNIST, Seed: opts.Seed,
		TrainN: scaled(600, 200), TestN: scaled(200, 100),
		DataDir: opts.DataDir,
	})
	if err != nil {
		return err
	}
	if err := svc.Register(victim); err != nil {
		return err
	}
	queries := []int{scaled(50, 20), scaled(200, 50), scaled(600, 150)}
	lambdas := []float64{0, 0.004, 0.01}
	tbl := &report.Table{
		Title:  "Campaign sweep: oracle adv. accuracy under surrogate FGSM (victim mnist, raw-output)",
		Header: []string{"queries", "surrogate acc (λ=0)"},
	}
	for _, l := range lambdas {
		tbl.Header = append(tbl.Header, fmt.Sprintf("adv acc λ=%g", l))
	}
	for _, q := range queries {
		var row []string
		var surAcc float64
		advs := make([]string, 0, len(lambdas))
		for _, l := range lambdas {
			res, err := svc.RunCampaign(service.CampaignSpec{
				Victim: "mnist", Mode: oracle.RawOutput, Seed: opts.Seed,
				Queries: q, Lambda: l,
			})
			if err != nil {
				return err
			}
			if l == 0 {
				surAcc = res.SurrogateAccuracy
			}
			advs = append(advs, report.F(res.AdvAccuracy, 3))
		}
		row = append(row, fmt.Sprintf("%d", q), report.F(surAcc, 3))
		row = append(row, advs...)
		tbl.AddRow(row...)
	}
	fmt.Println(tbl.String())
	st := svc.Stats()
	fmt.Printf("campaigns served: %d (cache hits %d, misses %d)\n\n",
		st.Campaigns, st.CacheHits, st.CacheMisses)
	if outDir == "" {
		return nil
	}
	path := filepath.Join(outDir, "campaign_sweep.csv")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tbl.WriteCSV(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func runCalibrate(opts experiment.Options, _ string) error {
	accs, err := experiment.VictimAccuracies(opts)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:  "Victim calibration (paper regime: MNIST ~0.92, CIFAR-10 ~0.30-0.40 test)",
		Header: []string{"config", "train acc", "test acc"},
	}
	names := make([]string, 0, len(accs))
	for name := range accs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tbl.AddRow(name, report.F(accs[name][0], 3), report.F(accs[name][1], 3))
	}
	fmt.Println(tbl.String())
	return nil
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func writeCSV(path, xLabel string, series []report.Series) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteSeriesCSV(f, xLabel, series); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
