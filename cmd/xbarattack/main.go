// Command xbarattack regenerates every table and figure of the paper
// "Enhancing Adversarial Attacks on Single-Layer NVM Crossbar-Based Neural
// Networks with Power Consumption Information" (Merkel, SOCC 2022) from
// the simulation stack in this repository.
//
// Usage:
//
//	xbarattack [flags] <command>
//
// Commands:
//
//	table1     Table I correlation coefficients
//	fig3       Figure 3 sensitivity / 1-norm heatmaps
//	fig4       Figure 4 single-pixel attack sweeps
//	fig5       Figure 5 surrogate black-box attack sweeps
//	ablations  extraction-noise, search and multi-pixel ablations
//	calibrate  victim accuracies per configuration
//	all        everything above, in paper order
//
// Flags:
//
//	-seed     int     experiment seed (default 1)
//	-scale    float   workload scale in (0,1]; 1 = paper-sized (default 0.25)
//	-runs     int     override repetition count (0 = scaled default)
//	-workers  int     workers per fan-out level (0 = all CPUs, 1 =
//	                  fully serial; default 0). Runners nest fan-outs
//	                  (e.g. configs x samples), so total goroutines can
//	                  reach workers^2. Results are bit-identical for
//	                  every worker count at a fixed seed.
//	-data     string  directory with real MNIST/CIFAR files (optional)
//	-out      string  directory for CSV exports (optional)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"xbarsec/internal/experiment"
	"xbarsec/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xbarattack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xbarattack", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	scale := fs.Float64("scale", 0.25, "workload scale in (0,1]; 1 = paper-sized sweeps")
	runs := fs.Int("runs", 0, "override repetition count (0 = scaled default)")
	workers := fs.Int("workers", 0, "workers per fan-out level (0 = all CPUs, 1 = fully serial); nested sweeps may run up to workers^2 goroutines; results are seed-deterministic at any count")
	dataDir := fs.String("data", "", "directory with real MNIST/CIFAR-10 files")
	outDir := fs.String("out", "", "directory for CSV exports")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one command, got %d", fs.NArg())
	}
	opts := experiment.Options{Seed: *seed, Scale: *scale, Runs: *runs, Workers: *workers, DataDir: *dataDir}

	cmd := fs.Arg(0)
	commands := map[string]func(experiment.Options, string) error{
		"table1":    runTable1,
		"fig3":      runFig3,
		"fig4":      runFig4,
		"fig5":      runFig5,
		"ablations": runAblations,
		"calibrate": runCalibrate,
	}
	if cmd == "all" {
		for _, name := range []string{"calibrate", "table1", "fig3", "fig4", "fig5", "ablations"} {
			if err := commands[name](opts, *outDir); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := commands[cmd]
	if !ok {
		return fmt.Errorf("unknown command %q (want table1|fig3|fig4|fig5|ablations|calibrate|all)", cmd)
	}
	return fn(opts, *outDir)
}

func runTable1(opts experiment.Options, _ string) error {
	res, err := experiment.RunTable1(opts)
	if err != nil {
		return err
	}
	fmt.Println(res.Render().String())
	return nil
}

func runFig3(opts experiment.Options, outDir string) error {
	res, err := experiment.RunFig3(opts)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if outDir == "" {
		return nil
	}
	for _, panel := range res.Panels {
		for _, m := range []struct {
			suffix string
			values []float64
		}{
			{"sensitivity", panel.Sensitivity},
			{"norms", panel.Norms},
		} {
			path := filepath.Join(outDir, "fig3_"+sanitize(panel.Config.Name())+"_"+m.suffix+".pgm")
			if err := writePGMFile(path, m.values, panel.Width, panel.Height); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}
	return nil
}

func writePGMFile(path string, values []float64, w, h int) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WritePGM(f, values, w, h); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func runFig4(opts experiment.Options, outDir string) error {
	res, err := experiment.RunFig4(opts)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	// Iterate panels in sorted-name order: ranging over the series map
	// directly would print in Go's randomized map order, breaking the
	// run-to-run reproducibility the engine guarantees.
	series := res.Series()
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		plot := &report.LinePlot{
			Title:  "Figure 4 [" + name + "]",
			XLabel: "attack strength", YLabel: "test accuracy",
			Series: series[name],
		}
		fmt.Println(plot.String())
	}
	if outDir == "" {
		return nil
	}
	for _, name := range names {
		path := filepath.Join(outDir, "fig4_"+sanitize(name)+".csv")
		if err := writeCSV(path, "strength", series[name]); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func runFig5(opts experiment.Options, _ string) error {
	res, err := experiment.RunFig5(experiment.Fig5Options{Options: opts})
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func runAblations(opts experiment.Options, _ string) error {
	noise, err := experiment.RunNoiseAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(noise.Render().String())
	search, err := experiment.RunSearchAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(search.Render().String())
	multi, err := experiment.RunMultiPixelAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(multi.Render().String())
	depth, err := experiment.RunDepthAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(depth.Render().String())
	masking, err := experiment.RunMaskingAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(masking.Render().String())
	traces, err := experiment.RunTraceAblation(opts)
	if err != nil {
		return err
	}
	fmt.Println(traces.Render().String())
	return nil
}

func runCalibrate(opts experiment.Options, _ string) error {
	accs, err := experiment.VictimAccuracies(opts)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:  "Victim calibration (paper regime: MNIST ~0.92, CIFAR-10 ~0.30-0.40 test)",
		Header: []string{"config", "train acc", "test acc"},
	}
	names := make([]string, 0, len(accs))
	for name := range accs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tbl.AddRow(name, report.F(accs[name][0], 3), report.F(accs[name][1], 3))
	}
	fmt.Println(tbl.String())
	return nil
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func writeCSV(path, xLabel string, series []report.Series) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteSeriesCSV(f, xLabel, series); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
