// Command xbarserve exposes the attack-campaign service over HTTP: it
// trains demo victim networks, programs them onto simulated crossbars,
// and serves concurrent attacker sessions, side-channel extractions and
// full extraction/evasion campaigns from one shared registry.
//
// Usage:
//
//	xbarserve [flags]
//
// Flags:
//
//	-addr     string  listen address (default :8080)
//	-victims  string  comma-separated demo victims to host:
//	                  mnist,cifar10 (default mnist)
//	-seed     int     service and victim seed (default 1)
//	-train-n  int     victim training-set size (default 600)
//	-test-n   int     victim test-set size (default 200)
//	-epochs   int     victim training epochs (default 30)
//	-budget   int     default session query budget (default 10000)
//	-workers  int     per-job fan-out (0 = all CPUs)
//	-jobs     int     max concurrent campaign/experiment jobs (0 = all CPUs)
//	-data     string  directory with real MNIST/CIFAR files (optional)
//	-session-ttl   duration  evict sessions idle longer than this
//	                         (0 = never; e.g. 10m)
//	-max-sessions  int       cap concurrently open sessions per victim
//	                         (0 = unlimited)
//
// Quickstart (see README.md for the full tour):
//
//	xbarserve -addr :8080 &
//	curl -s localhost:8080/v1/victims
//	curl -s -X POST localhost:8080/v1/sessions \
//	     -d '{"victim":"mnist","mode":"raw-output","measure_power":true,"budget":100}'
//	curl -s -X POST localhost:8080/v1/campaigns \
//	     -d '{"victim":"mnist","mode":"raw-output","seed":7,"queries":200,"lambda":0.004}'
//
// Any experiment in the grid-engine registry runs server-side too —
// list, launch and poll:
//
//	curl -s localhost:8080/v1/experiments
//	curl -s -X POST 'localhost:8080/v1/experiments?wait=1' \
//	     -d '{"name":"table1","seed":7,"scale":0.05}'
//	curl -s -X POST localhost:8080/v1/experiments -d '{"name":"fig5","seed":7,"scale":0.05}'
//	curl -s localhost:8080/v1/experiments/jobs/job-1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xbarsec/internal/dataset"
	"xbarsec/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xbarserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xbarserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	victims := fs.String("victims", "mnist", "comma-separated demo victims (mnist,cifar10)")
	seed := fs.Int64("seed", 1, "service and victim seed")
	trainN := fs.Int("train-n", 600, "victim training-set size")
	testN := fs.Int("test-n", 200, "victim test-set size")
	epochs := fs.Int("epochs", 30, "victim training epochs")
	budget := fs.Int("budget", 10000, "default session query budget")
	workers := fs.Int("workers", 0, "per-job fan-out (0 = all CPUs)")
	jobs := fs.Int("jobs", 0, "max concurrent campaign/experiment jobs (0 = all CPUs)")
	dataDir := fs.String("data", "", "directory with real MNIST/CIFAR-10 files")
	sessionTTL := fs.Duration("session-ttl", 0, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 0, "cap concurrently open sessions per victim (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc := service.New(service.Config{
		Seed:                 *seed,
		Workers:              *workers,
		MaxConcurrentJobs:    *jobs,
		DefaultSessionBudget: *budget,
		SessionTTL:           *sessionTTL,
		MaxSessionsPerVictim: *maxSessions,
		DataDir:              *dataDir,
	})
	defer svc.Close()

	for _, name := range strings.Split(*victims, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var kind dataset.Kind
		switch name {
		case "mnist":
			kind = dataset.MNIST
		case "cifar10":
			kind = dataset.CIFAR10
		default:
			return fmt.Errorf("unknown victim kind %q (want mnist or cifar10)", name)
		}
		fmt.Fprintf(os.Stderr, "xbarserve: training victim %q...\n", name)
		v, err := service.TrainVictim(service.VictimSpec{
			Name: name, Kind: kind, Seed: *seed,
			TrainN: *trainN, TestN: *testN, Epochs: *epochs,
			DataDir: *dataDir,
		})
		if err != nil {
			return err
		}
		if err := svc.Register(v); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "xbarserve: victim %q ready (%d inputs, %d classes)\n",
			name, v.Inputs(), v.Outputs())
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "xbarserve: listening on %s\n", *addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "xbarserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
