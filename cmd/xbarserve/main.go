// Command xbarserve exposes the attack-campaign service over HTTP: it
// trains demo victim networks, programs them onto simulated crossbars,
// and serves concurrent attacker sessions, side-channel extractions and
// full extraction/evasion campaigns from one shared registry. The wire
// protocol is the versioned public xbarsec/api package; the supported
// way to drive a server is the xbarsec/client SDK (curl works too —
// every body is plain JSON).
//
// Usage:
//
//	xbarserve [flags]
//
// Flags:
//
//	-addr     string  listen address (default :8080)
//	-victims  string  comma-separated demo victims to host:
//	                  mnist,cifar10 (default mnist)
//	-seed     int     service and victim seed (default 1)
//	-train-n  int     victim training-set size (default 600)
//	-test-n   int     victim test-set size (default 200)
//	-epochs   int     victim training epochs (default 30)
//	-budget   int     default session query budget (default 10000)
//	-workers  int     per-job fan-out (0 = all CPUs)
//	-jobs     int     max concurrent campaign/experiment jobs (0 = all CPUs)
//	-fast             serve with the fast tensor backend (SIMD +
//	                  unrolled GEMM kernels). A process-wide serving
//	                  mode, selected before any victim trains: results
//	                  agree with a reference server only within the
//	                  documented tolerance (see internal/tensor), the
//	                  mode is surfaced in /v2/version and /v2/stats as
//	                  tensor_backend, and artifacts cache under
//	                  backend-suffixed keys so a -data-dir shared
//	                  across modes never aliases their numbers
//	-data     string  directory with real MNIST/CIFAR files (optional)
//	-data-dir string  durable state directory (job journal + artifact
//	                  spill); when set the server journals every
//	                  accepted experiment job before launch, replays
//	                  incomplete jobs on restart, and serves completed
//	                  artifacts from the on-disk spill store
//	                  (empty = memory-only)
//	-journal-fsync  bool  fsync every journal append before accepting
//	                      the job (default true; disable only when the
//	                      filesystem's write cache is trusted)
//	-journal-mb     int   job-journal byte budget in MiB between
//	                      compactions (0 = 64)
//	-session-ttl       duration  evict sessions idle longer than this
//	                             (0 = never; e.g. 10m)
//	-max-sessions      int       cap concurrently open sessions per victim
//	                             (0 = unlimited)
//	-artifact-cache-mb int       byte budget of the artifact cache in MiB
//	                             (0 = 256)
//	-victim-cache-mb   int       byte budget of the experiment victim
//	                             store in MiB (0 = 1024)
//	-node-id     string  this node's id within -peers; setting both makes
//	                     the server one node of a static cluster
//	-peers       string  full cluster membership as "id=url,..." —
//	                     including this node — identical on every node.
//	                     Each key's requests are served by its
//	                     consistent-hash owner; other nodes answer with a
//	                     node_redirect (HTTP 421) the SDK follows, and
//	                     owners fetch-and-verify artifacts their peers
//	                     already computed instead of recomputing. All
//	                     nodes must share -seed (victims must be
//	                     bit-identical) and should share -fast
//	-ring-vnodes int     virtual nodes per member on the placement ring
//	                     (0 = 64); must match across the cluster
//	-smoke                       after boot, drive the server through the
//	                             client SDK (version handshake, session,
//	                             batched queries, stats), print the
//	                             results, and exit
//
// Quickstart with the Go SDK (see README.md for the full tour):
//
//	c, _ := client.New("http://localhost:8080")
//	sess, _ := c.OpenSession(ctx, api.OpenSessionRequest{
//		Victim: "mnist", Mode: api.ModeRawOutput,
//		MeasurePower: true, Budget: 100,
//	})
//	batch, _ := sess.QueryBatch(ctx, inputs) // N queries, 1 round trip
//	res, _ := c.RunCampaign(ctx, api.CampaignRequest{
//		Victim: "mnist", Mode: api.ModeRawOutput,
//		Seed: 7, Queries: 200, Lambda: 0.004,
//	})
//
// Any experiment in the grid-engine registry runs server-side too,
// including fig5 with custom sweep grids:
//
//	infos, _ := c.Experiments(ctx)
//	res, _ := c.RunExperiment(ctx, api.ExperimentSpec{
//		Name: "fig5", Seed: 7, Scale: 0.05,
//		Options: &api.ExperimentOptions{Fig5: &api.Fig5Options{
//			Queries: []int{10, 100}, Lambdas: []float64{0, 0.01},
//		}},
//	})
//	job, _ := c.LaunchExperiment(ctx, api.ExperimentSpec{Name: "table1", Seed: 7})
//	done, _ := c.WaitJob(ctx, job.ID, 0)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xbarsec/api"
	"xbarsec/client"
	"xbarsec/internal/cluster"
	"xbarsec/internal/dataset"
	"xbarsec/internal/experiment"
	"xbarsec/internal/service"
	"xbarsec/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xbarserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xbarserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	victims := fs.String("victims", "mnist", "comma-separated demo victims (mnist,cifar10)")
	seed := fs.Int64("seed", 1, "service and victim seed")
	trainN := fs.Int("train-n", 600, "victim training-set size")
	testN := fs.Int("test-n", 200, "victim test-set size")
	epochs := fs.Int("epochs", 30, "victim training epochs")
	budget := fs.Int("budget", 10000, "default session query budget")
	workers := fs.Int("workers", 0, "per-job fan-out (0 = all CPUs)")
	jobs := fs.Int("jobs", 0, "max concurrent campaign/experiment jobs (0 = all CPUs)")
	dataDir := fs.String("data", "", "directory with real MNIST/CIFAR-10 files")
	stateDir := fs.String("data-dir", "", "durable state directory (job journal + artifact spill); empty = memory-only")
	journalFsync := fs.Bool("journal-fsync", true, "fsync every journal append before accepting the job")
	journalMB := fs.Int("journal-mb", 0, "job-journal byte budget in MiB between compactions (0 = 64)")
	sessionTTL := fs.Duration("session-ttl", 0, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 0, "cap concurrently open sessions per victim (0 = unlimited)")
	artifactMB := fs.Int("artifact-cache-mb", 0, "artifact-cache byte budget in MiB (0 = 256)")
	victimMB := fs.Int("victim-cache-mb", 0, "experiment victim-store byte budget in MiB (0 = 1024)")
	smoke := fs.Bool("smoke", false, "boot, self-check through the client SDK, and exit")
	fast := fs.Bool("fast", false, "serve with the fast tensor backend (tolerance-equal to the bit-exact default; see internal/tensor)")
	nodeID := fs.String("node-id", "", "this node's id within -peers (cluster mode)")
	peers := fs.String("peers", "", `full cluster membership as "id=url,..." including this node`)
	ringVNodes := fs.Int("ring-vnodes", 0, "virtual nodes per member on the placement ring (0 = 64)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fast {
		// Selected once, before victims train or the service opens — the
		// backend is part of the deployment's configuration, surfaced to
		// clients via /v2/version, never swapped while serving.
		tensor.Use(tensor.NewFast(*workers))
	}

	if *victimMB > 0 {
		experiment.ConfigureVictimStore(0, int64(*victimMB)<<20)
	}
	cfg := service.Config{
		Seed:                   *seed,
		Workers:                *workers,
		MaxConcurrentJobs:      *jobs,
		DefaultSessionBudget:   *budget,
		SessionTTL:             *sessionTTL,
		MaxSessionsPerVictim:   *maxSessions,
		MaxCachedArtifactBytes: int64(*artifactMB) << 20,
		DataDir:                *dataDir,
		StateDir:               *stateDir,
		JournalFsync:           *journalFsync,
		MaxJournalBytes:        int64(*journalMB) << 20,
	}
	if (*nodeID == "") != (*peers == "") {
		return errors.New("cluster mode needs both -node-id and -peers")
	}
	if *peers != "" {
		members, err := cluster.ParseMembers(*peers)
		if err != nil {
			return err
		}
		// The ring seed is the service seed: peers must already share it
		// (victims are derived from it), so it doubles as the placement
		// seed without another flag to keep in sync.
		ring, err := cluster.New(members, *ringVNodes, *seed)
		if err != nil {
			return err
		}
		if _, ok := ring.Lookup(*nodeID); !ok {
			return fmt.Errorf("-node-id %q is not in -peers", *nodeID)
		}
		cfg.Cluster = &service.ClusterConfig{NodeID: *nodeID, Ring: ring}
		fmt.Fprintf(os.Stderr, "xbarserve: cluster node %q of %d (ring %.12s, %d vnodes)\n",
			*nodeID, ring.Len(), ring.Hash(), ring.VNodes())
	}
	var svc *service.Service
	if *stateDir != "" {
		var rec *service.Recovery
		var err error
		svc, rec, err = service.Open(cfg)
		if err != nil {
			return err
		}
		if rec.TornJournalTail {
			fmt.Fprintln(os.Stderr, "xbarserve: journal had a torn tail (crash mid-append); intact records recovered")
		}
		fmt.Fprintf(os.Stderr, "xbarserve: recovered %d job(s) from %s (%d re-launched, %d failed, %d spilled artifact(s))\n",
			rec.ReplayedJobs, *stateDir, rec.Relaunched, rec.FailedJobs, rec.SpilledArtifacts)
	} else {
		svc = service.New(cfg)
	}
	defer svc.Close()

	for _, name := range strings.Split(*victims, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var kind dataset.Kind
		switch name {
		case "mnist":
			kind = dataset.MNIST
		case "cifar10":
			kind = dataset.CIFAR10
		default:
			return fmt.Errorf("unknown victim kind %q (want mnist or cifar10)", name)
		}
		fmt.Fprintf(os.Stderr, "xbarserve: training victim %q...\n", name)
		v, err := service.TrainVictim(service.VictimSpec{
			Name: name, Kind: kind, Seed: *seed,
			TrainN: *trainN, TestN: *testN, Epochs: *epochs,
			DataDir: *dataDir,
		})
		if err != nil {
			return err
		}
		if err := svc.Register(v); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "xbarserve: victim %q ready (%d inputs, %d classes)\n",
			name, v.Inputs(), v.Outputs())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "xbarserve: listening on %s\n", ln.Addr())

	if *smoke {
		err := runSmoke(ctx, svc, baseURL(ln.Addr()))
		shutdownErr := shutdown(srv, errCh)
		if err != nil {
			return fmt.Errorf("smoke: %w", err)
		}
		return shutdownErr
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "xbarserve: shutting down")
	return shutdown(srv, errCh)
}

func shutdown(srv *http.Server, errCh chan error) error {
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// baseURL renders a dialable http URL for the bound listener (an
// unspecified listen IP like ":8080" dials back over loopback).
func baseURL(a net.Addr) string {
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		return "http://" + a.String()
	}
	host := tcp.IP.String()
	if tcp.IP == nil || tcp.IP.IsUnspecified() {
		host = "127.0.0.1"
	}
	return fmt.Sprintf("http://%s", net.JoinHostPort(host, fmt.Sprint(tcp.Port)))
}

// runSmoke drives the freshly booted server through the client SDK —
// the deployment self-check: version handshake, victim listing, a
// budgeted session issuing single and batched queries, and the stats
// snapshot. Output goes to stdout (one "smoke:" line per probe); any
// failure aborts with the offending error.
func runSmoke(ctx context.Context, svc *service.Service, url string) error {
	c, err := client.New(url)
	if err != nil {
		return err
	}
	v, err := c.Version(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: protocol %s, %s tensor backend, %d experiments (registry %.12s)\n",
		v.Version, v.TensorBackend, v.Experiments, v.ExperimentsHash)

	victims, err := c.Victims(ctx)
	if err != nil {
		return err
	}
	if len(victims) == 0 {
		return errors.New("no victims registered")
	}
	name := victims[0].Name
	fmt.Printf("smoke: %d victim(s); probing %q (%d inputs, %d classes)\n",
		len(victims), name, victims[0].Inputs, victims[0].Outputs)

	sess, err := c.OpenSession(ctx, api.OpenSessionRequest{
		Victim: name, Mode: api.ModeRawOutput, MeasurePower: true, Budget: 5,
	})
	if err != nil {
		return err
	}
	victim, err := svc.Victim(name)
	if err != nil {
		return err
	}
	input := victim.Test().X.Row(0)
	single, err := sess.Query(ctx, input)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: query ok (label %d, power %.4g, %d/%d budget spent)\n",
		single.Label, single.Power, single.Queries, sess.Info().Budget)

	// A batch larger than the remaining budget: the admitted prefix must
	// succeed, the tail must carry the typed budget error.
	inputs := make([][]float64, 6)
	for i := range inputs {
		inputs[i] = victim.Test().X.Row(i % victim.Test().Len())
	}
	batch, err := sess.QueryBatch(ctx, inputs)
	if err != nil {
		return err
	}
	served, refused := 0, 0
	for _, r := range batch.Results {
		if r.Error == nil {
			served++
		} else if r.Error.Code == api.CodeBudgetExhausted {
			refused++
		} else {
			return fmt.Errorf("unexpected batch outcome error: %v", r.Error)
		}
	}
	if served != 4 || refused != 2 {
		return fmt.Errorf("batch accounting: served %d refused %d, want 4/2", served, refused)
	}
	// The first batch outcome must equal a fresh session's same query —
	// the batched path serves the same bytes as the scalar one.
	if batch.Results[0].Label != single.Label {
		return fmt.Errorf("batch label %d != single-query label %d", batch.Results[0].Label, single.Label)
	}
	fmt.Printf("smoke: batch of %d ok in one round trip (%d served, %d refused, remaining %d)\n",
		len(inputs), served, refused, batch.Remaining)

	if err := sess.Close(ctx); err != nil {
		return err
	}
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: stats ok (%d queries in %d coalesced flushes, max batch %d)\n",
		st.Victims[0].Requests, st.Victims[0].Batches, st.Victims[0].MaxBatch)
	fmt.Println("smoke: ok")
	return nil
}
