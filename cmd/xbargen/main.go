// Command xbargen exports the synthetic MNIST-like and CIFAR-like corpora
// to disk in the genuine distribution formats (MNIST IDX files, CIFAR-10
// binary batches), so they can be inspected with standard tools or fed
// back through `xbarattack -data <dir>` exactly like real data.
//
// Usage:
//
//	xbargen -out <dir> [-kind mnist|cifar10|both] [-train N] [-test N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xbarsec/internal/dataset"
	"xbarsec/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xbargen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xbargen", flag.ContinueOnError)
	out := fs.String("out", "", "output directory (required)")
	kind := fs.String("kind", "both", "dataset family: mnist, cifar10 or both")
	trainN := fs.Int("train", 2000, "training samples")
	testN := fs.Int("test", 500, "test samples")
	seed := fs.Int64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("missing -out directory")
	}
	if *trainN <= 0 || *testN <= 0 {
		return fmt.Errorf("sample counts must be positive")
	}
	src := rng.New(*seed)
	doMNIST := *kind == "mnist" || *kind == "both"
	doCIFAR := *kind == "cifar10" || *kind == "both"
	if !doMNIST && !doCIFAR {
		return fmt.Errorf("unknown kind %q (want mnist, cifar10 or both)", *kind)
	}
	if doMNIST {
		dir := filepath.Join(*out, "mnist")
		cfg := dataset.DefaultMNISTLikeConfig()
		train, err := dataset.GenerateMNISTLike(src.Split("mnist-train"), *trainN, cfg)
		if err != nil {
			return err
		}
		test, err := dataset.GenerateMNISTLike(src.Split("mnist-test"), *testN, cfg)
		if err != nil {
			return err
		}
		if err := dataset.ExportMNISTLayout(dir, train, test); err != nil {
			return err
		}
		fmt.Printf("wrote MNIST-like corpus (%d train / %d test) to %s\n", train.Len(), test.Len(), dir)
	}
	if doCIFAR {
		dir := filepath.Join(*out, "cifar10")
		cfg := dataset.DefaultCIFARLikeConfig()
		full, err := dataset.GenerateCIFARLike(src.Split("cifar"), *trainN+*testN, cfg)
		if err != nil {
			return err
		}
		train := full.Head(*trainN)
		idx := make([]int, 0, *testN)
		for i := *trainN; i < full.Len(); i++ {
			idx = append(idx, i)
		}
		test := full.Subset(idx)
		if err := dataset.ExportCIFARLayout(dir, train, test); err != nil {
			return err
		}
		fmt.Printf("wrote CIFAR-like corpus (%d train / %d test) to %s\n", train.Len(), test.Len(), dir)
	}
	return nil
}
