// Command xbarvet is the project's static-analysis gate: the four
// analyzers of internal/analyze packaged as a `go vet -vettool`. It is a
// unitchecker, so the go command drives it one package at a time with
// full type information and caches clean results:
//
//	go build -o bin/xbarvet ./cmd/xbarvet
//	go vet -vettool=bin/xbarvet ./...
//
// `make lint` does exactly that; `make api-baseline` re-runs only the
// apisurface analyzer with -apisurface.write to regenerate the committed
// surface snapshot after a version bump. See internal/analyze for the
// contracts and the //xbar:allow annotation grammar.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"xbarsec/internal/analyze"
)

func main() {
	unitchecker.Main(analyze.All()...)
}
