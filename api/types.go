package api

import "encoding/json"

// Mode selects how much of the oracle's output a query reveals — the
// wire form of the paper's two disclosure settings.
type Mode string

// The disclosure modes.
const (
	// ModeLabelOnly reveals just the argmax class label.
	ModeLabelOnly Mode = "label-only"
	// ModeRawOutput reveals the full output vector.
	ModeRawOutput Mode = "raw-output"
)

// Health is the GET /healthz body.
type Health struct {
	Status string `json:"status"`
}

// VersionInfo is the GET /v2/version body: the server's protocol
// version plus a digest of its experiment registry, so clients can
// detect both incompatible protocols and diverging experiment sets
// before spending any budget.
type VersionInfo struct {
	// Version is the human form of the protocol version, e.g. "v1.0".
	Version string `json:"version"`
	// Major is the compatibility gate: the client SDK refuses servers
	// whose Major differs from its own.
	Major int `json:"major"`
	// Minor counts additive, backward-compatible protocol changes.
	Minor int `json:"minor"`
	// Experiments is the number of registered experiments.
	Experiments int `json:"experiments"`
	// ExperimentsHash digests the sorted experiment-registry names
	// (sha256, hex). Two servers with equal hashes accept the same
	// ExperimentSpec.Name values.
	ExperimentsHash string `json:"experiments_hash"`
	// TensorBackend is the GEMM backend the server computes with
	// ("reference" or "fast"; additive in v2.1). Two servers with
	// different backends agree on every result only within the fast
	// backend's documented error bound, not bit-for-bit.
	TensorBackend string `json:"tensor_backend,omitempty"`
}

// OpenSessionRequest is the POST /v2/sessions body: what one attacker
// session may observe and spend.
type OpenSessionRequest struct {
	// Victim names the registered victim to attack (GET /v2/victims).
	Victim string `json:"victim"`
	// Mode selects label-only or raw-output disclosure ("" = label-only).
	Mode Mode `json:"mode,omitempty"`
	// MeasurePower attaches the power side channel to every query.
	MeasurePower bool `json:"measure_power,omitempty"`
	// PowerNoiseStd is the relative instrument noise on power readings.
	PowerNoiseStd float64 `json:"power_noise_std,omitempty"`
	// Budget caps the session's oracle queries. 0 selects the server
	// default; negative means unlimited.
	Budget int `json:"budget,omitempty"`
}

// Session is a session snapshot: the POST /v2/sessions and
// GET /v2/sessions/{id} body.
type Session struct {
	// ID is the session handle — and its only credential: anyone holding
	// it can spend the budget or close the session.
	ID string `json:"id"`
	// Victim is the attacked victim's name.
	Victim string `json:"victim"`
	// Mode is the session's disclosure mode.
	Mode Mode `json:"mode"`
	// Budget is the session's query cap (0 = unlimited).
	Budget int `json:"budget"`
	// Queries counts oracle queries charged so far.
	Queries int `json:"queries"`
	// Remaining is the unspent budget, or -1 when unlimited.
	Remaining int `json:"remaining"`
}

// SessionClosed is the DELETE /v2/sessions/{id} body.
type SessionClosed struct {
	Status string `json:"status"`
}

// QueryRequest is the POST /v2/sessions/{id}/query body: one oracle
// query.
type QueryRequest struct {
	// Input is the query vector; its length must equal the victim's
	// input dimensionality.
	Input []float64 `json:"input"`
}

// QueryResponse is what one oracle query reveals.
type QueryResponse struct {
	// Label is the oracle's predicted class.
	Label int `json:"label"`
	// Raw is the full output vector; omitted in label-only mode.
	Raw []float64 `json:"raw,omitempty"`
	// Power is the measured crossbar power in the paper's normalized
	// convention; 0 when the session measures no power.
	Power float64 `json:"power,omitempty"`
	// Queries and Remaining snapshot the session accounting after this
	// query.
	Queries   int `json:"queries"`
	Remaining int `json:"remaining"`
}

// QueryBatchRequest is the POST /v2/sessions/{id}/queries body: a slice
// of oracle queries served as one batched array read. Budget accounting
// is per query and order-faithful — the batch behaves exactly like
// submitting the inputs one by one, but costs one round trip and one
// coalesced flush instead of len(Inputs) of each.
type QueryBatchRequest struct {
	// Inputs are the query vectors, answered in order.
	Inputs [][]float64 `json:"inputs"`
}

// QueryOutcome is one query's result within a batch: a response, or a
// per-query error (after the session budget runs out mid-batch, the
// remaining outcomes carry Error "budget_exhausted", exactly as
// sequential queries would have failed).
type QueryOutcome struct {
	Label int       `json:"label"`
	Raw   []float64 `json:"raw,omitempty"`
	Power float64   `json:"power,omitempty"`
	// Error is set when this query was refused; the response fields are
	// then zero.
	Error *Error `json:"error,omitempty"`
}

// QueryBatchResponse answers a batched query: one outcome per input, in
// input order, plus the session accounting after the batch.
type QueryBatchResponse struct {
	Results   []QueryOutcome `json:"results"`
	Queries   int            `json:"queries"`
	Remaining int            `json:"remaining"`
}

// CampaignRequest is the POST /v2/campaigns body: one model-extraction-
// plus-evasion campaign (collect a budgeted query set, train a
// power-regularized surrogate, craft FGSM examples, measure oracle
// accuracy on them). Deterministic given the spec against a noise-free
// victim, so identical requests are served from the artifact cache.
type CampaignRequest struct {
	// Victim names the registered victim to attack.
	Victim string `json:"victim"`
	// Mode is the disclosure mode.
	Mode Mode `json:"mode"`
	// Seed drives collection shuffling, surrogate init and SGD order.
	Seed int64 `json:"seed"`
	// Queries is the attacker's oracle budget.
	Queries int `json:"queries"`
	// Lambda is the power-loss weight λ of the paper's Eq. (9).
	Lambda float64 `json:"lambda"`
	// SurrogateEpochs overrides surrogate training length (0 = default).
	SurrogateEpochs int `json:"surrogate_epochs,omitempty"`
	// AttackEps is the FGSM strength (0 = the paper's 0.1).
	AttackEps float64 `json:"attack_eps,omitempty"`
}

// CampaignResult is the deliverable of one campaign job.
type CampaignResult struct {
	Victim    string  `json:"victim"`
	Mode      Mode    `json:"mode"`
	Seed      int64   `json:"seed"`
	Queries   int     `json:"queries"`
	Lambda    float64 `json:"lambda"`
	AttackEps float64 `json:"attack_eps"`
	// CleanAccuracy is the victim's unattacked test accuracy.
	CleanAccuracy float64 `json:"clean_accuracy"`
	// SurrogateAccuracy is the stolen model's test accuracy.
	SurrogateAccuracy float64 `json:"surrogate_accuracy"`
	// AdvAccuracy is the victim's accuracy under surrogate-crafted FGSM;
	// CleanAccuracy - AdvAccuracy is the attack's damage.
	AdvAccuracy float64 `json:"adv_accuracy"`
	// QueriesCharged is the oracle budget the campaign actually spent.
	QueriesCharged int `json:"queries_charged"`
	// Cached reports whether the result was served from the artifact
	// cache instead of being recomputed.
	Cached bool `json:"cached"`
}

// ExtractRequest is the POST /v2/extract body: one power-side-channel
// extraction job (basis queries through a measurement probe).
type ExtractRequest struct {
	// Victim names the registered victim to probe.
	Victim string `json:"victim"`
	// Repeats averages each basis measurement this many times (0 = 1).
	Repeats int `json:"repeats,omitempty"`
	// NoiseStd is the relative instrument noise on the probe.
	NoiseStd float64 `json:"noise_std,omitempty"`
	// Seed drives the instrument-noise stream.
	Seed int64 `json:"seed"`
}

// ExtractResult carries the recovered power-channel signals.
type ExtractResult struct {
	Victim   string  `json:"victim"`
	Repeats  int     `json:"repeats"`
	NoiseStd float64 `json:"noise_std"`
	Seed     int64   `json:"seed"`
	// Signals are the raw basis-query power readings, one per input.
	Signals []float64 `json:"signals"`
	// Norms are the calibrated column 1-norm estimates.
	Norms []float64 `json:"norms"`
	// ProbeQueries is the number of power measurements spent.
	ProbeQueries int `json:"probe_queries"`
	// Cached reports artifact-cache service.
	Cached bool `json:"cached"`
}

// ExperimentSpec is the POST /v2/experiments body: one experiment job,
// fully determined by (name, seed, scale, runs, options) plus the
// server's data directory — so the spec doubles as the server's
// artifact-cache key and identical launches are served from cache.
type ExperimentSpec struct {
	// Name is the registry name, e.g. "table1" (GET /v2/experiments).
	Name string `json:"name"`
	// Seed roots every random choice of the experiment.
	Seed int64 `json:"seed"`
	// Scale in (0, 1] shrinks the sweep; 0 selects 1.0 (paper-sized).
	Scale float64 `json:"scale,omitempty"`
	// Runs overrides the repetition count (0 = scaled default).
	Runs int `json:"runs,omitempty"`
	// Options carries typed per-experiment options; the entry must match
	// Name (e.g. Options.Fig5 requires Name "fig5") and is validated
	// server-side.
	Options *ExperimentOptions `json:"options,omitempty"`
}

// ExperimentOptions carries typed experiment options: per-experiment
// entries (at most one may be set, and it must match
// ExperimentSpec.Name; new experiments grow new fields here) plus
// cross-cutting fields that apply to any experiment. All additive, so
// minor-version compatible.
type ExperimentOptions struct {
	// Fig5 customizes the Figure 5 surrogate-attack sweep grids.
	Fig5 *Fig5Options `json:"fig5,omitempty"`
	// TensorBackend asserts the GEMM backend the result must be computed
	// with ("" accepts whatever the server runs; additive in v2.1). The
	// backend is a process-wide serving mode, not a per-job switch, so a
	// server whose active backend differs refuses the spec (bad_request)
	// instead of returning numbers the client didn't ask for.
	TensorBackend string `json:"tensor_backend,omitempty"`
}

// Fig5Options overrides the Figure 5 sweep grids; zero values select
// the paper's grids (thinned at small Scale).
type Fig5Options struct {
	// Queries overrides the query-budget grid (each entry > 0; clamped
	// to the victim's training-set size server-side).
	Queries []int `json:"queries,omitempty"`
	// Lambdas overrides the power-loss-weight grid (each entry >= 0).
	Lambdas []float64 `json:"lambdas,omitempty"`
	// SurrogateEpochs overrides surrogate training length.
	SurrogateEpochs int `json:"surrogate_epochs,omitempty"`
}

// Axis is one named dimension of an experiment grid.
type Axis struct {
	// Name labels the dimension, e.g. "config" or "strength".
	Name string `json:"name"`
	// Values are the axis points in enumeration order.
	Values []string `json:"values"`
}

// ExperimentInfo describes one registry entry: an element of the
// GET /v2/experiments listing.
type ExperimentInfo struct {
	Name  string `json:"name"`
	Title string `json:"title"`
	Axes  []Axis `json:"axes,omitempty"`
}

// ExperimentResult is the deliverable of one experiment job.
type ExperimentResult struct {
	Name    string             `json:"name"`
	Seed    int64              `json:"seed"`
	Scale   float64            `json:"scale"`
	Runs    int                `json:"runs,omitempty"`
	Options *ExperimentOptions `json:"options,omitempty"`
	// Render is the experiment's human-readable report — byte-identical
	// to `xbarattack <name>` at the same options.
	Render string `json:"render"`
	// Result is the experiment's structured JSON form.
	Result json.RawMessage `json:"result"`
	// Cached reports whether the result came from the artifact cache.
	Cached bool `json:"cached"`
}

// JobStatus is an experiment job's lifecycle state.
type JobStatus string

// Job lifecycle states.
const (
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// Job is an experiment-job snapshot: the POST /v2/experiments and
// GET /v2/experiments/jobs/{id} body.
type Job struct {
	// ID is the poll handle.
	ID   string         `json:"id"`
	Spec ExperimentSpec `json:"spec"`
	// Status is running until the job finishes, then done or failed.
	Status JobStatus `json:"status"`
	// Error is the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Result is set once the job is done.
	Result *ExperimentResult `json:"result,omitempty"`
}

// VictimStats is one victim's serving counters: an element of the
// GET /v2/victims listing and of Stats.
type VictimStats struct {
	Name    string `json:"name"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
	// Noisy reports whether the victim's array draws per-read noise.
	Noisy bool `json:"noisy"`
	// Requests is the number of queries served through the coalescer.
	Requests int64 `json:"requests"`
	// Batches is the number of coalesced flushes; Requests/Batches is
	// the achieved coalescing factor.
	Batches int64 `json:"batches"`
	// MaxBatch is the largest single flush.
	MaxBatch int64 `json:"max_batch"`
	// QueueDepthPeak is the deepest the victim's coalescing queue has
	// ever been at submit time — the high-water mark of batching
	// pressure.
	QueueDepthPeak int64 `json:"queue_depth_peak"`
	// OpenSessions counts currently open sessions.
	OpenSessions int64 `json:"open_sessions"`
}

// Stats is the GET /v2/stats body: a point-in-time service snapshot.
type Stats struct {
	Victims []VictimStats `json:"victims"`
	// Sessions counts open sessions across all victims.
	Sessions int `json:"sessions"`
	// ReapedSessions counts sessions evicted by the idle-TTL janitor.
	ReapedSessions int64 `json:"reaped_sessions"`
	// Campaigns counts campaign jobs served (cached or computed).
	Campaigns int64 `json:"campaigns"`
	// ExperimentJobs counts experiment jobs currently tracked (running
	// or finished, within the job-table bound).
	ExperimentJobs int `json:"experiment_jobs"`
	// CacheHits and CacheMisses are artifact-cache counters.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// CachedArtifacts is the number of distinct artifacts in memory;
	// CachedArtifactBytes is their approximate byte weight (the value
	// bounded by the server's artifact-cache byte budget).
	CachedArtifacts     int   `json:"cached_artifacts"`
	CachedArtifactBytes int64 `json:"cached_artifact_bytes"`
	// FailedJobs counts experiment jobs that finished in error (panics
	// included — a panicking job is recovered and marked failed, never
	// left running forever).
	FailedJobs int64 `json:"failed_jobs"`
	// ReplayedJobs counts jobs restored from the job journal at the last
	// startup — the observable trace of crash recovery.
	ReplayedJobs int64 `json:"replayed_jobs"`
	// SpilledArtifacts / SpilledArtifactBytes describe the on-disk spill
	// store behind the in-memory cache (0 when the server runs without a
	// data directory); SpillHits counts artifacts served from disk
	// instead of recomputed.
	SpilledArtifacts     int64 `json:"spilled_artifacts"`
	SpilledArtifactBytes int64 `json:"spilled_artifact_bytes"`
	SpillHits            int64 `json:"spill_hits"`
	// Batcher observability, aggregated across victims (additive in
	// v2.0). BatchFlushes counts coalesced array reads; BatchedQueries
	// counts the queries they served, so BatchedQueries/BatchFlushes is
	// the service-wide coalescing factor. MaxBatch is the largest single
	// flush anywhere; QueueDepthPeak the deepest any victim's queue has
	// been at submit time.
	BatchFlushes   int64 `json:"batch_flushes"`
	BatchedQueries int64 `json:"batched_queries"`
	MaxBatch       int64 `json:"max_batch"`
	QueueDepthPeak int64 `json:"queue_depth_peak"`
	// TensorBackend is the GEMM backend the server computes with
	// (additive in v2.1; see VersionInfo.TensorBackend).
	TensorBackend string `json:"tensor_backend,omitempty"`
	// NodeID and RingHash identify this node and its cluster membership
	// version when the server runs as part of a cluster (additive in
	// v2.2; empty on single-node servers). Two nodes route consistently
	// iff their RingHash values match.
	NodeID   string `json:"node_id,omitempty"`
	RingHash string `json:"ring_hash,omitempty"`
	// Cluster routing and peer-artifact counters (additive in v2.2).
	// RedirectsIssued counts requests refused with node_redirect;
	// PeerFetches counts artifact fetch attempts against peers, of which
	// PeerFetchVerified passed provenance verification and were served
	// without recomputing and PeerFetchRejected failed verification and
	// fell back to local compute.
	RedirectsIssued   int64 `json:"redirects_issued,omitempty"`
	PeerFetches       int64 `json:"peer_fetches,omitempty"`
	PeerFetchVerified int64 `json:"peer_fetch_verified,omitempty"`
	PeerFetchRejected int64 `json:"peer_fetch_rejected,omitempty"`
	// ProvenanceRecords counts Merkle provenance records stored alongside
	// spilled artifacts (additive in v2.2; 0 without a data directory).
	ProvenanceRecords int64 `json:"provenance_records,omitempty"`
}

// NodeInfo is one cluster member as exposed by GET /v2/cluster.
type NodeInfo struct {
	// ID is the node's stable identifier (`xbarserve -node-id`).
	ID string `json:"id"`
	// URL is the base URL peers and redirected clients reach it at.
	URL string `json:"url"`
	// Self marks the node that served this response.
	Self bool `json:"self,omitempty"`
}

// ClusterInfo is the GET /v2/cluster body: the static membership this
// node routes by (additive in v2.2). Single-node servers report
// Enabled false with no members.
type ClusterInfo struct {
	Enabled bool `json:"enabled"`
	// Members is the full static membership, sorted by ID.
	Members []NodeInfo `json:"members,omitempty"`
	// VNodes and RingSeed are the ring parameters; with Members they
	// fully determine placement.
	VNodes   int   `json:"vnodes,omitempty"`
	RingSeed int64 `json:"ring_seed,omitempty"`
	// RingHash is the membership version (see Stats.RingHash).
	RingHash string `json:"ring_hash,omitempty"`
}
