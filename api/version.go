package api

import "fmt"

// The protocol version this package defines. Major gates
// compatibility (see the package comment's versioning policy); Minor
// counts additive changes within it.
const (
	Major = 1
	Minor = 0
)

// VersionString renders the package's protocol version, e.g. "v1.0".
func VersionString() string { return fmt.Sprintf("v%d.%d", Major, Minor) }

// PathPrefix is the URL prefix of every versioned endpoint.
const PathPrefix = "/v1"
