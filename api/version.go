package api

import "fmt"

// The protocol version this package defines. Major gates
// compatibility (see the package comment's versioning policy); Minor
// counts additive changes within it.
const (
	// Major 2: the victim-derivation break. Servers now train every
	// victim from one canonical stream per config
	// (rng.New(seed).Split("victim").Split(config)), so campaign,
	// extraction and experiment outputs differ bit-for-bit from any v1
	// server at the same request — same endpoints, same schemas,
	// different numbers. Changing an endpoint's meaning is incompatible
	// under the versioning policy, hence the major bump and the move of
	// every versioned path from /v1 to /v2.
	Major = 2
	// Minor 0 additionally carries the additive batcher-observability
	// counters in Stats (batch_flushes, batched_queries, max_batch,
	// queue_depth_peak).
	//
	// Minor 1 adds the tensor-backend surface: VersionInfo.TensorBackend
	// and Stats.TensorBackend report which GEMM backend the server
	// computes with ("reference" is the bit-exact default; "fast" trades
	// bit-identity for speed within a documented error bound), and the
	// optional ExperimentOptions.TensorBackend lets a spec assert the
	// backend it expects — servers refuse (bad_request) rather than
	// silently serve numbers from a different backend. All additive:
	// v2.0 clients never set the option and may ignore the new fields.
	//
	// Minor 2 adds the cluster + provenance surface: the node_redirect
	// and unknown_artifact error codes with Error.RedirectTo, the
	// GET /v2/cluster membership endpoint (ClusterInfo), the
	// GET /v2/artifacts/{id} + /proof endpoint pair (Artifact,
	// ArtifactProof, and the provenance-chain helpers in provenance.go),
	// the GET /v2/metrics text endpoint, and the cluster/provenance
	// gauges in Stats. All additive: single-node servers never emit a
	// redirect, and v2.1 clients may ignore every new field.
	Minor = 2
)

// VersionString renders the package's protocol version, e.g. "v2.0".
func VersionString() string { return fmt.Sprintf("v%d.%d", Major, Minor) }

// PathPrefix is the URL prefix of every versioned endpoint. It tracks
// Major: a v1 client hitting a v2 server 404s before it can misread
// renumbered results.
const PathPrefix = "/v2"
