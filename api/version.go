package api

import "fmt"

// The protocol version this package defines. Major gates
// compatibility (see the package comment's versioning policy); Minor
// counts additive changes within it.
const (
	Major = 1
	// Minor 1: durability additions — the "unavailable" error code with
	// Retry-After semantics (Error.RetryAfter + the Retry-After header)
	// and the recovery/spill counter block in Stats.
	Minor = 1
)

// VersionString renders the package's protocol version, e.g. "v1.0".
func VersionString() string { return fmt.Sprintf("v%d.%d", Major, Minor) }

// PathPrefix is the URL prefix of every versioned endpoint.
const PathPrefix = "/v1"
