// Package api is the versioned public wire protocol of the xbarsec
// attack-campaign service: every request and response body exchanged
// with an xbarserve instance is one of the typed structs in this
// package, every error response is the uniform Error envelope, and the
// protocol version is negotiated through GET /v2/version. The package
// has no dependencies beyond the standard library, so any Go client —
// the bundled client SDK (xbarsec/client), the CLI's remote paths, or
// third-party tooling — can speak the protocol by importing it alone.
//
// # Endpoints (protocol v2)
//
//	GET    /healthz                    Health
//	GET    /v2/version                 VersionInfo
//	GET    /v2/victims                 []VictimStats
//	POST   /v2/sessions                OpenSessionRequest  -> Session
//	GET    /v2/sessions/{id}           Session
//	DELETE /v2/sessions/{id}           SessionClosed
//	POST   /v2/sessions/{id}/query     QueryRequest        -> QueryResponse
//	POST   /v2/sessions/{id}/queries   QueryBatchRequest   -> QueryBatchResponse
//	POST   /v2/campaigns               CampaignRequest     -> CampaignResult
//	POST   /v2/extract                 ExtractRequest      -> ExtractResult
//	GET    /v2/experiments             []ExperimentInfo
//	POST   /v2/experiments             ExperimentSpec      -> Job
//	                                   (?wait=1 blocks for the result)
//	GET    /v2/experiments/jobs/{id}   Job
//	GET    /v2/stats                   Stats (?format=csv for CSV)
//	GET    /v2/cluster                 ClusterInfo
//	GET    /v2/artifacts/{id}          Artifact
//	GET    /v2/artifacts/{id}/proof    ArtifactProof
//	GET    /v2/metrics                 Prometheus text exposition
//
// # Versioning policy
//
// The protocol follows the usual major/minor contract. Within one major
// version, servers may add endpoints and add response fields, and may
// accept new optional request fields — they never rename or remove
// fields, change a field's type, or change an endpoint's meaning.
// Clients must therefore tolerate unknown response fields. Anything
// incompatible increments Major (and the versioned path prefix, see
// PathPrefix), and the client SDK refuses to talk to a server whose
// major version differs from its own (ErrorCode "version_mismatch").
//
// Protocol v2 is exactly such a break: the server's victim derivation
// changed (one canonical RNG stream per model config, shared by every
// runner), so campaign, extraction and experiment responses carry
// different numbers than a v1 server would return for the same request
// — an endpoint-meaning change, not a schema change. See version.go.
//
// v2.1 adds the tensor-backend surface: VersionInfo.TensorBackend and
// Stats.TensorBackend report the GEMM backend the server computes with,
// and ExperimentOptions.TensorBackend lets a spec assert the backend it
// expects (a mismatch is a bad_request, never silently different
// numbers). All additive — v2.0 clients are unaffected.
//
// v2.2 adds the cluster + provenance surface: GET /v2/cluster exposes a
// node's static membership, GET /v2/artifacts/{id} (+ /proof) serves
// spilled artifacts by content address with their Merkle provenance
// chains (see provenance.go), GET /v2/metrics exposes cache gauges in
// the Prometheus text format, and the node_redirect error (HTTP 421,
// Error.RedirectTo) tells a client which node owns the key it asked the
// wrong node for. All additive — a single-node server never redirects,
// and v2.1 clients may ignore every new endpoint.
//
// # Errors
//
// Every non-2xx response carries the Error envelope {code, message,
// detail}. Code is machine-readable and stable across the major
// version; Message and Detail are human-readable and may change.
// Clients switch on Code (or on the HTTP status, which is derived from
// it — see ErrorCode.HTTPStatus), never on message text.
package api
