// Package api is the versioned public wire protocol of the xbarsec
// attack-campaign service: every request and response body exchanged
// with an xbarserve instance is one of the typed structs in this
// package, every error response is the uniform Error envelope, and the
// protocol version is negotiated through GET /v1/version. The package
// has no dependencies beyond the standard library, so any Go client —
// the bundled client SDK (xbarsec/client), the CLI's remote paths, or
// third-party tooling — can speak the protocol by importing it alone.
//
// # Endpoints (protocol v1)
//
//	GET    /healthz                    Health
//	GET    /v1/version                 VersionInfo
//	GET    /v1/victims                 []VictimStats
//	POST   /v1/sessions                OpenSessionRequest  -> Session
//	GET    /v1/sessions/{id}           Session
//	DELETE /v1/sessions/{id}           SessionClosed
//	POST   /v1/sessions/{id}/query     QueryRequest        -> QueryResponse
//	POST   /v1/sessions/{id}/queries   QueryBatchRequest   -> QueryBatchResponse
//	POST   /v1/campaigns               CampaignRequest     -> CampaignResult
//	POST   /v1/extract                 ExtractRequest      -> ExtractResult
//	GET    /v1/experiments             []ExperimentInfo
//	POST   /v1/experiments             ExperimentSpec      -> Job
//	                                   (?wait=1 blocks for the result)
//	GET    /v1/experiments/jobs/{id}   Job
//	GET    /v1/stats                   Stats (?format=csv for CSV)
//
// # Versioning policy
//
// The protocol follows the usual major/minor contract. Within one major
// version, servers may add endpoints and add response fields, and may
// accept new optional request fields — they never rename or remove
// fields, change a field's type, or change an endpoint's meaning.
// Clients must therefore tolerate unknown response fields. Anything
// incompatible increments Major (and the /v1/ path prefix), and the
// client SDK refuses to talk to a server whose major version differs
// from its own (ErrorCode "version_mismatch").
//
// # Errors
//
// Every non-2xx response carries the Error envelope {code, message,
// detail}. Code is machine-readable and stable across the major
// version; Message and Detail are human-readable and may change.
// Clients switch on Code (or on the HTTP status, which is derived from
// it — see ErrorCode.HTTPStatus), never on message text.
package api
