package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// The artifact provenance chain (additive in v2.2).
//
// Every artifact a server spills is a pure function of its spec (the
// server-side cache key) and the code that computed it (the experiment
// registry digest plus the tensor backend). The server records that
// lineage as a three-link Merkle chain of domain-separated sha256
// hashes:
//
//	spec_hash   = H("xbarsec/spec"   || spec_key)
//	code_hash   = H("xbarsec/code"   || code)
//	result_hash = H("xbarsec/result" || payload)
//	root        = H("xbarsec/artifact" || spec_hash || code_hash || result_hash)
//
// (|| joins with "\n"; hashes enter the root as lowercase hex.) The
// proof carries the leaf preimages (spec_key, code) together with the
// hashes, so any holder of the payload re-derives every link with
// nothing but sha256 — no server trust, no recomputation of the
// experiment. A node offered a peer's artifact verifies the chain
// against the spec key and code identity it would have used itself; a
// client fetching GET /v2/artifacts/{id} + /proof does the same with
// ArtifactProof.Verify.

// Hash-domain prefixes of the provenance chain. Domain separation
// keeps a spec key that happens to equal a payload from colliding
// across links.
const (
	domainSpec     = "xbarsec/spec"
	domainCode     = "xbarsec/code"
	domainResult   = "xbarsec/result"
	domainArtifact = "xbarsec/artifact"
)

// Artifact is the GET /v2/artifacts/{id} body: the raw spilled payload
// at a content address. The payload is the artifact's canonical JSON
// encoding — for experiment artifacts, an ExperimentResult.
type Artifact struct {
	// ID is the content address: hex(sha256(spec_key)), the name the
	// artifact is spilled under.
	ID string `json:"id"`
	// Payload is the artifact's exact spilled bytes.
	Payload json.RawMessage `json:"payload"`
}

// ArtifactProof is the GET /v2/artifacts/{id}/proof body: the Merkle
// provenance chain of one artifact, carrying both the leaf preimages
// and the derived hashes.
type ArtifactProof struct {
	// ID is the artifact's content address, hex(sha256(SpecKey)).
	ID string `json:"id"`
	// SpecKey is the server-side cache key the artifact was computed
	// for — the spec-link preimage.
	SpecKey string `json:"spec_key"`
	// Code identifies the code that computed the artifact (experiment
	// registry digest + tensor backend) — the code-link preimage.
	Code string `json:"code"`
	// SpecHash, CodeHash and ResultHash are the chain links; Root binds
	// them. All lowercase hex sha256.
	SpecHash   string `json:"spec_hash"`
	CodeHash   string `json:"code_hash"`
	ResultHash string `json:"result_hash"`
	Root       string `json:"root"`
}

// ArtifactID returns an artifact's content address: hex(sha256 of the
// raw spec key), matching the server's spill-store naming.
func ArtifactID(specKey string) string {
	sum := sha256.Sum256([]byte(specKey))
	return hex.EncodeToString(sum[:])
}

// hashDomain hashes data under a domain prefix and returns lowercase
// hex.
func hashDomain(domain string, data []byte) string {
	h := sha256.New()
	h.Write([]byte(domain))
	h.Write([]byte{'\n'})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// BuildProof derives the full provenance chain for an artifact from
// its leaf preimages and payload. Servers call it when spilling; a
// verifier never needs it directly (Verify re-derives each link).
func BuildProof(specKey, code string, payload []byte) ArtifactProof {
	p := ArtifactProof{
		ID:         ArtifactID(specKey),
		SpecKey:    specKey,
		Code:       code,
		SpecHash:   hashDomain(domainSpec, []byte(specKey)),
		CodeHash:   hashDomain(domainCode, []byte(code)),
		ResultHash: hashDomain(domainResult, payload),
	}
	p.Root = hashDomain(domainArtifact, []byte(p.SpecHash+p.CodeHash+p.ResultHash))
	return p
}

// Verify walks the chain: it re-derives every link from the proof's
// preimages and the payload, and fails on the first mismatch. A nil
// error means the payload is exactly the bytes this spec key and code
// identity produced — byte-level tampering, a proof transplanted from
// another spec, and a result computed by different code all fail.
func (p *ArtifactProof) Verify(payload []byte) error {
	if got := ArtifactID(p.SpecKey); got != p.ID {
		return fmt.Errorf("provenance: artifact id %s is not the address of spec key %q (want %s)", p.ID, p.SpecKey, got)
	}
	if got := hashDomain(domainSpec, []byte(p.SpecKey)); got != p.SpecHash {
		return fmt.Errorf("provenance: spec hash mismatch: chain says %s, spec key derives %s", p.SpecHash, got)
	}
	if got := hashDomain(domainCode, []byte(p.Code)); got != p.CodeHash {
		return fmt.Errorf("provenance: code hash mismatch: chain says %s, code identity derives %s", p.CodeHash, got)
	}
	if got := hashDomain(domainResult, payload); got != p.ResultHash {
		return fmt.Errorf("provenance: result hash mismatch: payload does not match the recorded artifact")
	}
	if got := hashDomain(domainArtifact, []byte(p.SpecHash+p.CodeHash+p.ResultHash)); got != p.Root {
		return fmt.Errorf("provenance: root mismatch: chain links do not bind to root %s", p.Root)
	}
	return nil
}
