package api

import (
	"errors"
	"net/http"
)

// ErrorCode is the machine-readable identity of a protocol error.
// Codes are stable across a major version: clients switch on them to
// drive retry/backoff/abort decisions, never on message text.
type ErrorCode string

// The protocol v1 error codes.
const (
	// CodeBadRequest: the request body or parameters failed validation;
	// retrying the identical request cannot succeed.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeUnknownVictim: the named victim is not registered.
	CodeUnknownVictim ErrorCode = "unknown_victim"
	// CodeUnknownSession: the session id is closed, expired or never
	// existed.
	CodeUnknownSession ErrorCode = "unknown_session"
	// CodeUnknownExperiment: the experiment name is not in the server's
	// registry (list GET /v2/experiments).
	CodeUnknownExperiment ErrorCode = "unknown_experiment"
	// CodeUnknownJob: the experiment job id is unknown or was evicted.
	CodeUnknownJob ErrorCode = "unknown_job"
	// CodeBudgetExhausted: the session's oracle query budget is spent;
	// further queries on this session will keep failing.
	CodeBudgetExhausted ErrorCode = "budget_exhausted"
	// CodeSessionLimit: the victim is at its per-victim open-session cap;
	// retry after other sessions close or expire.
	CodeSessionLimit ErrorCode = "session_limit"
	// CodeJobLimit: the experiment-job table is full of running jobs;
	// retry after some finish.
	CodeJobLimit ErrorCode = "job_limit"
	// CodeServiceClosed: the service is shutting down.
	CodeServiceClosed ErrorCode = "service_closed"
	// CodeVictimClosed: the victim's serving pipeline has been shut down.
	CodeVictimClosed ErrorCode = "victim_closed"
	// CodeUnavailable: the server cannot durably accept the work right
	// now (journal full, spill disk full, shutting down mid-flush) but
	// expects to recover; retry after Error.RetryAfter seconds. Unlike
	// CodeServiceClosed this is a transient condition, not a goodbye.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeVersionMismatch: the client and server speak different major
	// protocol versions. Synthesized client-side by the SDK's version
	// handshake; never emitted by a server.
	CodeVersionMismatch ErrorCode = "version_mismatch"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// The v2.2 additive error codes (cluster routing + artifact store).
const (
	// CodeNodeRedirect: this node is part of a cluster and does not own
	// the requested key; Error.RedirectTo carries the owner's base URL.
	// Not a failure — the SDK re-issues the identical request at the
	// owner (bounded hops) and surfaces only the owner's answer. Never
	// retried in place: the same node keeps not owning the key.
	CodeNodeRedirect ErrorCode = "node_redirect"
	// CodeUnknownArtifact: no spilled artifact (or no provenance record)
	// exists at the requested content address on this node.
	CodeUnknownArtifact ErrorCode = "unknown_artifact"
)

// HTTPStatus returns the HTTP status a server sends with the code —
// the mapping is part of the protocol, shared by server and clients.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnknownVictim, CodeUnknownSession, CodeUnknownExperiment, CodeUnknownJob, CodeUnknownArtifact:
		return http.StatusNotFound
	case CodeBudgetExhausted, CodeSessionLimit, CodeJobLimit:
		return http.StatusTooManyRequests
	case CodeServiceClosed, CodeVictimClosed, CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeNodeRedirect:
		// 421: the request reached a server unable to produce an
		// authoritative response for it — exactly a non-owning cluster
		// node. Below 500, so the SDK's bare-status retry heuristics
		// never replay it in place.
		return http.StatusMisdirectedRequest
	default:
		return http.StatusInternalServerError
	}
}

// Error is the uniform envelope of every non-2xx response body. It
// implements the error interface, so SDK methods return it directly and
// callers unwrap it with errors.As (or the CodeOf shortcut).
type Error struct {
	// Code is the machine-readable error identity.
	Code ErrorCode `json:"code"`
	// Message is a human-readable summary. Not stable — do not parse.
	Message string `json:"message"`
	// Detail optionally carries underlying-cause context (a decoder
	// error, the offending value). Not stable — do not parse.
	Detail string `json:"detail,omitempty"`
	// RetryAfter, when positive, is the server's backoff hint in
	// seconds: how long to wait before retrying. Servers mirror it in
	// the Retry-After response header; the SDK's retry policy honors it
	// over its own exponential schedule.
	RetryAfter int `json:"retry_after,omitempty"`
	// RedirectTo, set with CodeNodeRedirect, is the base URL of the
	// cluster node that owns the requested key. Clients re-issue the
	// identical request there (v2.2, additive).
	RedirectTo string `json:"redirect_to,omitempty"`
}

// Error renders the envelope as a conventional error string.
func (e *Error) Error() string {
	if e.Detail != "" {
		return string(e.Code) + ": " + e.Message + " (" + e.Detail + ")"
	}
	return string(e.Code) + ": " + e.Message
}

// CodeOf extracts the protocol error code from any error in err's
// chain, or "" when err carries none. The idiomatic client switch:
//
//	switch api.CodeOf(err) {
//	case api.CodeBudgetExhausted: ...
//	case api.CodeSessionLimit:    ...
//	}
func CodeOf(err error) ErrorCode {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}
