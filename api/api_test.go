package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestErrorCodeHTTPStatus(t *testing.T) {
	cases := map[ErrorCode]int{
		CodeBadRequest:        http.StatusBadRequest,
		CodeUnknownVictim:     http.StatusNotFound,
		CodeUnknownSession:    http.StatusNotFound,
		CodeUnknownExperiment: http.StatusNotFound,
		CodeUnknownJob:        http.StatusNotFound,
		CodeBudgetExhausted:   http.StatusTooManyRequests,
		CodeSessionLimit:      http.StatusTooManyRequests,
		CodeJobLimit:          http.StatusTooManyRequests,
		CodeServiceClosed:     http.StatusServiceUnavailable,
		CodeVictimClosed:      http.StatusServiceUnavailable,
		CodeVersionMismatch:   http.StatusInternalServerError,
		CodeInternal:          http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := code.HTTPStatus(); got != want {
			t.Errorf("%s -> %d, want %d", code, got, want)
		}
	}
}

func TestErrorEnvelopeRoundTrip(t *testing.T) {
	e := &Error{Code: CodeBudgetExhausted, Message: "spent", Detail: "42 of 42"}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"code":"budget_exhausted","message":"spent","detail":"42 of 42"}`
	if string(data) != want {
		t.Fatalf("envelope = %s", data)
	}
	var back Error
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != *e {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Error() != "budget_exhausted: spent (42 of 42)" {
		t.Fatalf("Error() = %q", back.Error())
	}
	if (&Error{Code: CodeInternal, Message: "boom"}).Error() != "internal: boom" {
		t.Fatal("detail-less rendering broken")
	}
}

func TestCodeOf(t *testing.T) {
	base := &Error{Code: CodeSessionLimit, Message: "full"}
	if CodeOf(base) != CodeSessionLimit {
		t.Fatal("direct extraction failed")
	}
	wrapped := fmt.Errorf("outer context: %w", base)
	if CodeOf(wrapped) != CodeSessionLimit {
		t.Fatal("wrapped extraction failed")
	}
	if CodeOf(errors.New("plain")) != "" {
		t.Fatal("plain error has a code")
	}
	if CodeOf(nil) != "" {
		t.Fatal("nil error has a code")
	}
}

func TestVersionString(t *testing.T) {
	if VersionString() != fmt.Sprintf("v%d.%d", Major, Minor) {
		t.Fatalf("VersionString() = %q", VersionString())
	}
}

// TestWireShapes pins a few JSON field names the protocol freezes —
// renaming any of these is a major-version change.
func TestWireShapes(t *testing.T) {
	spec := ExperimentSpec{Name: "fig5", Seed: 7, Options: &ExperimentOptions{
		Fig5: &Fig5Options{Queries: []int{5}, Lambdas: []float64{0.01}},
	}}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"fig5","seed":7,"options":{"fig5":{"queries":[5],"lambdas":[0.01]}}}`
	if string(data) != want {
		t.Fatalf("spec wire = %s", data)
	}
	out, err := json.Marshal(QueryOutcome{Error: &Error{Code: CodeBudgetExhausted, Message: "m"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"label":0,"error":{"code":"budget_exhausted","message":"m"}}` {
		t.Fatalf("outcome wire = %s", out)
	}
}
