GO ?= go

.PHONY: build test vet fmt fmt-check bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (with the offending file list) when any file is unformatted.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short benchmark sweep: the kernel microbenchmarks (µs-scale, so 200
# iterations stay fast). The experiment macro-benchmarks (Table1, Fig4,
# their *Workers parallel variants, ...) take seconds per iteration —
# run those explicitly, e.g.:
#   go test -run XXX -bench 'Table1' -benchtime 3x .
bench:
	$(GO) test -run XXX -bench 'CrossbarMVM|CrossbarPower|NormExtraction|FGSM' -benchtime 200x .

ci: build vet fmt-check test
