GO ?= go
BENCH_JSON ?= BENCH_9.json
COVER_PROFILE ?= cover.out

.PHONY: build test race vet xbarvet lint api-baseline goldens goldens-check fmt fmt-check bench bench-json chaos cluster cover examples test-fast ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fast-backend matrix leg: replays the tensor-consuming suites with
# the fast GEMM backend active (-tensor.fast, installed by each suite's
# tensortest TestMain). Equivalence pins and goldens switch to their
# tolerance mode automatically (tensor.Active().BitExact()); the tensor
# package's own equivalence/fuzz suite runs both backends in one pass
# and needs no flag.
test-fast:
	$(GO) test ./internal/experiment/ ./internal/nn/ ./internal/surrogate/ -tensor.fast -count=1

# Full suite under the race detector — the honesty check for the
# concurrent serving layer (internal/service) and the parallel
# experiment engine. -short skips the two full-registry deterministic
# replay tests (golden bit-identity, engine-wide worker invariance):
# they are ~10x slower under race and carry no concurrency value beyond
# what the dedicated store/pool/service race tests cover; the plain
# `make test` and `make cover` jobs run them in full. Slower than
# `make test`; CI runs it as its own job.
race:
	$(GO) test -race -short -timeout 20m ./...

vet:
	$(GO) vet ./...

# Builds the project vet tool (internal/analyze via cmd/xbarvet): the
# detrand, rngsplit, hotalloc and apisurface analyzers, run through the
# standard `go vet -vettool` driver.
xbarvet:
	$(GO) build -o bin/xbarvet ./cmd/xbarvet

# Machine-checks the project contracts: no ambient randomness/time/env
# in deterministic packages, no shared rng.Source captured by pool
# closures, no allocation in //xbar:hotpath functions, and no breaking
# change to the api/ wire surface vs api/testdata/surface.json.
# Suppressions need a written reason: //xbar:allow <reason>.
lint: xbarvet goldens-check
	$(GO) vet -vettool=bin/xbarvet ./...

# Regenerates the committed api-surface baseline. The analyzer refuses
# to overwrite a baseline recorded at the same version: bump api.Major
# (breaking) or api.Minor (additive) first, then run this and commit
# api/testdata/surface.json with the change.
api-baseline: xbarvet
	$(GO) vet -vettool=bin/xbarvet -apisurface.write ./api

# Regenerates testdata/golden/*.txt from the current runners — the only
# sanctioned way to change a golden (replays the whole registry at
# goldenOpts, deterministic at any worker count). Run it when an
# experiment's published numbers deliberately change, then commit the
# diff alongside the change that caused it.
goldens:
	$(GO) test ./internal/experiment/ -run TestGoldenBitIdentity -update-goldens -count=1

# Proves the committed goldens are exactly what `make goldens` produces
# today: regenerates in place and fails on any diff. Part of `make
# lint`, so CI rejects a golden edited by hand or left stale after a
# runner change.
goldens-check:
	$(GO) test ./internal/experiment/ -run TestGoldenBitIdentity -update-goldens -count=1
	git diff --exit-code -- internal/experiment/testdata/golden

fmt:
	gofmt -w .

# Fails (with the offending file list) when any file is unformatted.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short benchmark sweep: the kernel microbenchmarks (µs-scale, so 200
# iterations stay fast). The experiment macro-benchmarks (Table1, Fig4,
# their *Workers parallel variants, ...) take seconds per iteration —
# run those explicitly, e.g.:
#   go test -run XXX -bench 'Table1' -benchtime 3x .
bench:
	$(GO) test -run XXX -bench 'CrossbarMVM|CrossbarPower|NormExtraction|FGSM' -benchtime 200x .

# Runs the kernel microbenchmarks (many iterations) and the two macro
# benchmarks the perf trajectory tracks (few iterations — they take
# seconds each), and records ns/op into $(BENCH_JSON). Commit the result
# so every PR leaves a BENCH_<n>.json data point. The test runs write to
# intermediate files so a failing benchmark fails the target instead of
# being swallowed by the conversion pipe.
bench-json:
	$(GO) test -run XXX -bench 'GemmTA$$|GemmTB$$|GemmTAFast$$|GemmTBFast$$|TrainEpoch|CrossbarMVM|CrossbarPower|NormExtraction|FGSM$$' -benchtime 200x . > /tmp/xbarsec-bench-micro.txt
	$(GO) test -run XXX -bench 'SurrogateTrain|Table1$$|Table1Fast$$|ServeBatchQPS' -benchtime 3x . > /tmp/xbarsec-bench-macro.txt
	$(GO) test -run XXX -bench 'VictimStoreColdFig3$$|VictimStoreWarmFig3$$|VictimStoreCrossRunnerCold$$|VictimStoreCrossRunnerWarm$$|RegistryReplayWarm$$|ServiceColdRestart$$' -benchtime 3x . > /tmp/xbarsec-bench-store.txt
	$(GO) test -run XXX -bench 'GemmSweep' -benchtime 50x . > /tmp/xbarsec-bench-sweep.txt
	cat /tmp/xbarsec-bench-micro.txt /tmp/xbarsec-bench-macro.txt /tmp/xbarsec-bench-store.txt /tmp/xbarsec-bench-sweep.txt | $(GO) run ./cmd/benchjson > $(BENCH_JSON)
	@cat $(BENCH_JSON)

# Fault-injection chaos suite under the race detector: the WAL and
# fault-injection packages in full, the spill store, the service
# durability tests (kill-and-restart bit-identity, torn journal tail,
# corrupt spill quarantine, journal-full refusal, panicking job), and
# the SDK retry taxonomy/WaitJob-through-503 tests. Everything here
# exercises crash paths the plain suite only touches incidentally; CI
# runs it as its own job.
chaos:
	$(GO) test -race -timeout 10m ./internal/wal/ ./internal/faultinject/ ./internal/memo/
	$(GO) test -race -timeout 10m -run 'TestChaos' ./internal/service/
	$(GO) test -race -timeout 10m -run 'TestRetry|TestWaitJob|TestBackoff' ./client/

# Multi-node suite under the race detector: the ring and provenance
# packages in full, the two-in-process-node service tests (redirect
# end-to-end bit-identity, session pinning, peer fetch with Merkle
# verification, metrics) including the chaos variant that kills the
# owning node mid-job, and the SDK redirect-following tests. CI runs it
# as its own job.
cluster:
	$(GO) test -race -timeout 10m ./internal/cluster/ ./internal/provenance/
	$(GO) test -race -timeout 10m -run 'TestCluster|TestChaosCluster|TestMetrics|TestArtifact' ./internal/service/
	$(GO) test -race -timeout 10m -run 'TestRedirect' ./client/

# Builds and RUNS every example end to end (each takes a second or two;
# the campaign example boots the HTTP service and drives it through the
# client SDK), so SDK-consuming examples can't silently rot. CI runs
# this as its own step.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/powerprofile
	$(GO) run ./examples/surrogatetheft
	$(GO) run ./examples/robustness
	$(GO) run ./examples/defenses
	$(GO) run ./examples/campaign

# Full-suite coverage profile plus the per-package summary; CI runs this
# as its own job and archives nothing — the one-line total is the
# trend signal.
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) -covermode=atomic ./...
	$(GO) tool cover -func=$(COVER_PROFILE) | tail -n 1

ci: build vet lint fmt-check test
